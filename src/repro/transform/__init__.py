"""Program transformations for asynchronous query submission.

The paper's contribution: Rule A (loop fission), Rule B (control to flow
dependences), Rules C1–C3 with the statement reordering algorithm, the
nested-loop rule, the bounded-window extension, and the readability
pass — orchestrated by :class:`TransformEngine` and fronted by
:func:`asyncify` / :func:`asyncify_source`.
"""

from .asyncify import asyncify, asyncify_source
from .costmodel import (
    LoopCostEstimate,
    SpeculationEstimate,
    SpeculationPolicy,
    breakeven_hit_probability,
    breakeven_iterations,
    estimate_loop_cost,
    estimate_speculation,
    recommend_threads,
    should_speculate,
    should_transform,
)
from .engine import LoopReport, QueryOutcome, TransformEngine, TransformResult
from .errors import (
    REASON_CONTROL,
    REASON_EMBEDDED_QUERY,
    REASON_EXTERNAL,
    REASON_PRECONDITION,
    REASON_RECEIVER_WRITTEN,
    REASON_RECURSION,
    REASON_RENAME,
    REASON_REORDER_FAILED,
    REASON_TRUE_CYCLE,
    REASON_UNSUPPORTED_STMT,
    LoopNotTransformable,
    ReorderFailed,
    TransformError,
)
from .registry import QueryRegistry, QuerySpec, default_registry

# Imported last: repro.prefetch.insertion depends on the engine modules
# above (the package is already in sys.modules, so this is cycle-safe).
from ..prefetch.insertion import prefetch_source

__all__ = [
    "asyncify",
    "asyncify_source",
    "prefetch_source",
    "LoopCostEstimate",
    "SpeculationEstimate",
    "SpeculationPolicy",
    "breakeven_hit_probability",
    "breakeven_iterations",
    "estimate_loop_cost",
    "estimate_speculation",
    "recommend_threads",
    "should_speculate",
    "should_transform",
    "LoopReport",
    "QueryOutcome",
    "TransformEngine",
    "TransformResult",
    "LoopNotTransformable",
    "ReorderFailed",
    "TransformError",
    "QueryRegistry",
    "QuerySpec",
    "default_registry",
    "REASON_CONTROL",
    "REASON_EMBEDDED_QUERY",
    "REASON_EXTERNAL",
    "REASON_PRECONDITION",
    "REASON_RECEIVER_WRITTEN",
    "REASON_RECURSION",
    "REASON_RENAME",
    "REASON_REORDER_FAILED",
    "REASON_TRUE_CYCLE",
    "REASON_UNSUPPORTED_STMT",
]
