"""End-to-end query tracing: spans, span trees, and a ring-buffer recorder.

One query submitted through the pipeline yields a *span tree* — a root
``query`` span with children for each lifecycle stage it actually
crossed::

    query                       (root; sql, mode, cache outcome, ...)
    ├── cache                   (lookup: hit / follower / miss / bypass)
    ├── coalesce                (set-oriented dispatch: queue residency)
    ├── dispatch                (round trip; solo dispatches only)
    │   └── server.execute      (server worker: plan execution, demux)
    └── fetch                   (application-thread wait)

A *coalesced batch* is the one deliberate deviation from a strict tree:
the batch's single ``dispatch`` span (and its ``server.execute`` child)
is shared by every member query.  It starts its own trace, carries
``links`` back to each member's root span, and each member root carries
``dispatch_span: <id>`` — N causally-linked trees sharing one
server-execute span.

Speculative queries are ordinary traces whose root carries
``mode: "speculate"`` plus, once settled, ``wasted: true|false``.  A
wasted speculation's spans never attach to any other query's tree.

Design constraints (this sits on every hot path):

* **no-op when disabled** — instrumented code holds ``tracer=None`` (or
  checks :attr:`Tracer.enabled` once per request) and skips span
  construction entirely; the per-request overhead of a disabled tracer
  is a single attribute load and ``None`` test;
* **bounded memory** — finished spans land in a ring buffer
  (``capacity`` spans, oldest dropped first); an unfinished span is
  never recorded;
* **thread-friendly** — spans are handed across threads explicitly (the
  pipeline passes the parent into the executor task, the coalescer into
  the server call), so there is no context-variable magic to lose track
  of; id allocation and recording take one small lock.

>>> tracer = Tracer()
>>> with tracer.start("query", sql="SELECT 1") as root:
...     with root.child("server.execute") as child:
...         _ = child.set("rows", 1)
>>> [span.name for span in tracer.spans()]
['server.execute', 'query']
>>> tracer.spans()[0].parent_id == tracer.spans()[1].span_id
True
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional


class Span:
    """One timed, attributed node of a trace.

    Created through :meth:`Tracer.start` or :meth:`Span.child`; records
    itself into the tracer's ring buffer exactly once, on :meth:`end`
    (also triggered by leaving it as a context manager).  Attributes
    set after the end still show up — the buffer holds the object, not
    a serialization — which is how late settles (a speculation swept as
    wasted, then reclassified by a slow fetch) stay truthful.
    """

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "attrs",
        "links",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        #: Span ids this span is causally linked to without being their
        #: parent — the batched-dispatch span links every member root.
        self.links: List[int] = []

    # ------------------------------------------------------------------
    @property
    def ended(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> Optional[float]:
        """Wall duration (None until ended)."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def set(self, key: str, value: Any) -> "Span":
        """Set one attribute; returns self for chaining."""
        self.attrs[key] = value
        return self

    def link(self, span_id: int) -> "Span":
        """Causally link another span without parenting it."""
        self.links.append(span_id)
        return self

    def child(self, name: str, **attrs: Any) -> "Span":
        """Start a child span in the same trace."""
        return self.tracer.start(name, parent=self, **attrs)

    def end(self) -> "Span":
        """Finish the span and record it (idempotent)."""
        if self.end_s is None:
            self.end_s = time.perf_counter()
            self.tracer._record(self)
        return self

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = repr(exc)
        self.end()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view of the span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "links": list(self.links),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration_s * 1e3:.3f}ms" if self.ended else "open"
        return (
            f"<Span {self.name!r} t{self.trace_id}/s{self.span_id} {state}>"
        )


class Tracer:
    """Span factory plus bounded ring-buffer recorder.

    ``enabled=False`` makes recording a no-op; instrumented code is
    expected to skip span *creation* too (the pipeline holds
    ``tracer=None`` unless tracing was requested), so a quiescent system
    pays nothing.  ``capacity`` bounds retained finished spans.
    """

    def __init__(self, capacity: int = 4096, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._enabled = enabled
        self._lock = threading.Lock()
        self._buffer: "deque[Span]" = deque(maxlen=capacity)
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # ------------------------------------------------------------------
    def start(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        """Start a span — a new trace when ``parent`` is None."""
        with self._lock:
            span_id = next(self._span_ids)
            trace_id = (
                parent.trace_id if parent is not None else next(self._trace_ids)
            )
        return Span(
            self,
            name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )

    def _record(self, span: Span) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._buffer.append(span)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot of recorded (finished) spans, oldest first."""
        with self._lock:
            return list(self._buffer)

    def trace(self, trace_id: int) -> List[Span]:
        """Recorded spans of one trace, oldest first."""
        return [span for span in self.spans() if span.trace_id == trace_id]

    def traces(self) -> Dict[int, List[Span]]:
        """Recorded spans grouped by trace id."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def export(self) -> List[Dict[str, Any]]:
        """All recorded spans as plain dicts (JSON-ready)."""
        return [span.to_dict() for span in self.spans()]

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    # ------------------------------------------------------------------
    # rendering (the ``repro trace`` CLI)
    # ------------------------------------------------------------------
    def format_traces(self) -> str:
        """Render every recorded trace as an indented tree."""
        lines: List[str] = []
        for trace_id, spans in sorted(self.traces().items()):
            lines.append(f"trace {trace_id}")
            by_parent: Dict[Optional[int], List[Span]] = {}
            for span in spans:
                parent = span.parent_id
                if parent is not None and not any(
                    other.span_id == parent for other in spans
                ):
                    parent = None  # orphan (parent unrecorded): show at root
                by_parent.setdefault(parent, []).append(span)

            def walk(parent_id: Optional[int], depth: int) -> None:
                for span in sorted(
                    by_parent.get(parent_id, []), key=lambda s: s.start_s
                ):
                    duration = span.duration_s
                    timing = (
                        f"{duration * 1e3:.3f}ms" if duration is not None else "open"
                    )
                    attrs = ", ".join(
                        f"{key}={value!r}" for key, value in sorted(span.attrs.items())
                    )
                    links = (
                        f" links={span.links}" if span.links else ""
                    )
                    lines.append(
                        "  " * (depth + 1)
                        + f"{span.name} [s{span.span_id}] {timing}"
                        + (f" ({attrs})" if attrs else "")
                        + links
                    )
                    walk(span.span_id, depth + 1)

            walk(None, 0)
        return "\n".join(lines)
