"""Unified metrics registry: counters, gauges, percentile histograms.

The shape follows the load-generator exemplars (dbworkload-style
per-operation p50/p90/p95/p99): a :class:`Histogram` holds fixed,
log-spaced latency buckets, so recording is O(log buckets) with bounded
memory, and percentiles come out by interpolating the cumulative bucket
counts between exact observed min/max.

A :class:`MetricsRegistry` unifies three kinds of surface:

* **owned instruments** — ``counter(name)`` / ``gauge(name)`` /
  ``histogram(name)`` get-or-create by name; the submission pipeline
  records per-query latencies here when a registry is attached;
* **sources** — every pre-existing stats dataclass
  (``SubmissionStats``, ``ServerStats``, ``CacheStats``, the per-site
  speculation ledger) registers its ``stats_snapshot`` callable; the
  registry pulls them lazily, so registration costs nothing on the hot
  path;
* **snapshot** — :meth:`MetricsRegistry.snapshot` renders everything as
  one nested plain dict (JSON-ready; ``repro stats --json`` prints it,
  the bench harness embeds it in ``BENCH_*.json``).

>>> registry = MetricsRegistry()
>>> registry.counter("requests").inc()
1
>>> hist = registry.histogram("latency_s")
>>> for ms in (1, 2, 3, 4, 100):
...     hist.observe(ms / 1000.0)
>>> snap = registry.snapshot()
>>> snap["counters"]["requests"]
1
>>> 0.001 <= snap["histograms"]["latency_s"]["p50"] <= 0.004
True
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def default_latency_buckets(
    low_s: float = 1e-6, high_s: float = 60.0, per_decade: int = 5
) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``low_s`` to >= ``high_s``.

    Five buckets per decade spans 1µs..60s in 40-ish buckets — fine
    enough that interpolated percentiles sit within ~60% of the true
    value anywhere in the range, small enough to snapshot for free.
    """
    if low_s <= 0 or high_s <= low_s:
        raise ValueError("need 0 < low_s < high_s")
    if per_decade < 1:
        raise ValueError("need at least one bucket per decade")
    bounds: List[float] = []
    step = 10.0 ** (1.0 / per_decade)
    edge = low_s
    while edge < high_s:
        bounds.append(edge)
        edge *= step
    bounds.append(edge)
    return tuple(bounds)


_DEFAULT_BUCKETS = default_latency_buckets()


class Counter:
    """A monotonically-increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0.0)


class Histogram:
    """Fixed-bucket latency histogram with percentile extraction.

    ``bounds`` are bucket *upper* edges (seconds); one overflow bucket
    catches everything above the last edge.  Exact min/max/sum/count are
    tracked alongside, and percentile interpolation is clamped to the
    observed [min, max], so p50 of a single observation is that
    observation.
    """

    __slots__ = (
        "name",
        "bounds",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else _DEFAULT_BUCKETS
        )
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one
        (bucket layouts must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r} vs {other.name!r})"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for index, bucket in enumerate(counts):
                self._counts[index] += bucket
            self._count += count
            self._sum += total
            if low is not None and (self._min is None or low < self._min):
                self._min = low
            if high is not None and (self._max is None or high > self._max):
                self._max = high

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> Optional[float]:
        with self._lock:
            return self._sum / self._count if self._count else None

    def _percentile_locked(self, q: float) -> Optional[float]:
        """Quantile from the current state; caller holds ``_lock``."""
        if not self._count:
            return None
        target = q * self._count
        cumulative = 0.0
        for index, bucket in enumerate(self._counts):
            if not bucket:
                continue
            if cumulative + bucket >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else (self._max if self._max is not None else lower)
                )
                fraction = (target - cumulative) / bucket
                estimate = lower + fraction * (upper - lower)
                low = self._min if self._min is not None else estimate
                high = self._max if self._max is not None else estimate
                return min(max(estimate, low), high)
            cumulative += bucket
        return self._max

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``q`` in [0, 1]); None when empty.

        Linear interpolation inside the containing bucket, clamped to
        the exact observed min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        with self._lock:
            return self._percentile_locked(q)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict summary: count/sum/min/max/mean + p50/p90/p95/p99.

        All fields derive from one lock acquisition, so a snapshot taken
        during concurrent :meth:`observe` calls is internally consistent
        (``mean == sum / count`` exactly; the percentiles describe the
        same observations the count does).
        """
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count if self._count else None,
                "p50": self._percentile_locked(0.50),
                "p90": self._percentile_locked(0.90),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }


class MetricsRegistry:
    """One namespace unifying instruments and pre-existing stats surfaces.

    Instruments (:meth:`counter` / :meth:`gauge` / :meth:`histogram`)
    are get-or-create by name and live for the registry's lifetime.
    *Sources* are zero-argument callables returning plain dicts — the
    ``stats_snapshot()`` of an existing subsystem — pulled lazily at
    :meth:`snapshot` time only.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    def histograms(self) -> Dict[str, Histogram]:
        """Snapshot of the histogram instruments (the objects, not copies)."""
        with self._lock:
            return dict(self._histograms)

    # ------------------------------------------------------------------
    # sources (existing stats surfaces)
    # ------------------------------------------------------------------
    def register_source(
        self,
        name: str,
        fn: Callable[[], Dict[str, Any]],
        replace: bool = False,
    ) -> str:
        """Register a stats-snapshot callable; returns the final name.

        ``replace=True`` overwrites an existing source of the same name
        (shared subsystems — one server behind many connections —
        re-register idempotently); otherwise a taken name gets a
        ``#2``/``#3``... suffix so no surface is silently dropped.
        """
        with self._lock:
            final = name
            if not replace:
                suffix = 2
                while final in self._sources:
                    final = f"{name}#{suffix}"
                    suffix += 1
            self._sources[final] = fn
            return final

    def unregister_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as one nested plain dict (JSON-ready).

        Source callables run outside the registry lock (they take their
        own subsystem locks); a source that raises contributes an
        ``{"error": ...}`` stub instead of poisoning the snapshot.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            sources = dict(self._sources)
        rendered_sources: Dict[str, Any] = {}
        for name, fn in sources.items():
            try:
                rendered_sources[name] = fn()
            except Exception as exc:
                rendered_sources[name] = {"error": repr(exc)}
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": {name: g.value for name, g in gauges.items()},
            "histograms": {name: h.snapshot() for name, h in histograms.items()},
            "sources": rendered_sources,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """:meth:`snapshot` rendered as JSON (non-JSON values stringified)."""
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def reset(self) -> None:
        """Zero every owned instrument (sources are left alone)."""
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for instrument in instruments:
            instrument.reset()
