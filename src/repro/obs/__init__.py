"""Observability: end-to-end query tracing + unified metrics.

Two small, dependency-free subsystems that every layer of the stack
reports into:

* :mod:`repro.obs.trace` — a lightweight span API.  One query yields a
  causally-linked span tree (submit → cache → coalesce → dispatch →
  server execute → fetch) recorded into a bounded ring buffer; a
  disabled tracer costs one ``None`` check on the hot path.
* :mod:`repro.obs.metrics` — a unified registry of counters, gauges and
  fixed-bucket latency histograms (p50/p90/p95/p99 extraction), plus
  *sources*: every existing stats surface (``SubmissionStats``,
  ``ServerStats``, ``CacheStats``, the speculation ledger) registers a
  ``stats_snapshot`` callable, and one :meth:`MetricsRegistry.snapshot`
  call renders the whole system as a nested plain dict / JSON document.

See ``docs/OBSERVABILITY.md`` for the span model and JSON schemas.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
)
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "default_latency_buckets",
]
