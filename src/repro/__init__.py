"""repro — Program Transformations for Asynchronous Query Submission.

A full reproduction of Chavan, Guravannavar, Ramachandra and Sudarshan,
*Program Transformations for Asynchronous Query Submission* (ICDE 2011):
dataflow-based source-to-source rewriting of blocking query loops into
asynchronous submit/fetch form, together with every substrate the
paper's evaluation needs — an embedded latency-modeled SQL engine, an
asynchronous client runtime, a simulated web service and the five
benchmark workloads.

Quickstart::

    from repro import Database, SYS1, asyncify

    db = Database(SYS1)
    db.create_table("part", ("part_key", "int"), ("category_id", "int"))
    db.create_index("idx", "part", "category_id")
    db.bulk_load("part", [(i, i % 10) for i in range(10_000)])

    @asyncify
    def counts(conn, categories):
        out = []
        for category in categories:
            n = conn.execute_query(
                "SELECT count(*) FROM part WHERE category_id = ?",
                [category]).scalar()
            out.append(n)
        return out

    with db.connect(async_workers=10) as conn:
        print(counts(conn, list(range(10))))
    print(counts.__repro_source__)   # the rewritten program
"""

from .analysis.applicability import (
    ApplicabilityReport,
    analyze_functions,
    analyze_source,
    format_table_one,
)
from .client import Connection, PreparedQuery
from .db import (
    INSTANT,
    POSTGRES,
    SYS1,
    Database,
    DatabaseError,
    LatencyProfile,
    QueryResult,
    Transaction,
    TransactionError,
)
from .ir.purity import PurityEnv
from .prefetch import (
    CacheStats,
    PrefetchInserter,
    PrefetchSite,
    ResultCache,
    prefetch_source,
    tables_touched,
)
from .runtime import (
    AioConnection,
    AsyncExecutor,
    QueryHandle,
    Record,
    RecordTable,
    SpillableRecordTable,
    aio_connect,
)
from .core import SpeculativeHandle
from .transform import (
    QueryRegistry,
    QuerySpec,
    SpeculationPolicy,
    TransformEngine,
    TransformError,
    TransformResult,
    asyncify,
    asyncify_source,
    default_registry,
)
from .web import EntityGraphService, WebLatency, WebServiceClient

__version__ = "1.1.0"

__all__ = [
    "ApplicabilityReport",
    "analyze_functions",
    "analyze_source",
    "format_table_one",
    "Connection",
    "PreparedQuery",
    "INSTANT",
    "POSTGRES",
    "SYS1",
    "Database",
    "DatabaseError",
    "LatencyProfile",
    "QueryResult",
    "Transaction",
    "TransactionError",
    "PurityEnv",
    "CacheStats",
    "PrefetchInserter",
    "PrefetchSite",
    "ResultCache",
    "prefetch_source",
    "tables_touched",
    "AioConnection",
    "aio_connect",
    "AsyncExecutor",
    "QueryHandle",
    "Record",
    "RecordTable",
    "SpillableRecordTable",
    "QueryRegistry",
    "QuerySpec",
    "SpeculationPolicy",
    "SpeculativeHandle",
    "TransformEngine",
    "TransformError",
    "TransformResult",
    "asyncify",
    "asyncify_source",
    "default_registry",
    "EntityGraphService",
    "WebLatency",
    "WebServiceClient",
    "__version__",
]
