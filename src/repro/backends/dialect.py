"""AST -> SQLite SQL translation (parameter style kept pluggable).

The engine's SQL subset is small, but its *semantics* were pinned down
by the expression evaluator (:mod:`repro.db.plan.expr_eval`) and the
operators, not by SQLite — so translation is not string pass-through.
Three divergences are compensated here:

* **Division.**  The engine uses true division (``7 / 2 = 3.5``),
  narrowing back to int only when exact; SQLite's ``/`` is C-style
  integer division for int operands.  We emit
  ``CAST(a AS REAL) / b`` — SQLite already yields NULL on a zero or
  NULL divisor, matching the engine.  (The engine's int-narrowing is
  invisible to order-normalized comparison: ``3 == 3.0`` in Python.)
* **Modulo.**  The engine uses Python floor-mod (sign follows the
  divisor) with NULL on a zero divisor; SQLite's ``%`` is C-style
  (sign follows the dividend).  We emit a CASE expression that
  re-centers the remainder: ``((a % b) + b) % b``.
* **ORDER BY NULL placement.**  The engine sorts NULLs *last* on
  ascending keys (and therefore first on descending ones); SQLite
  defaults to NULLs first ascending.  Each key becomes two terms,
  ``(k IS NULL) dir, k dir`` — portable to SQLite versions without
  ``NULLS LAST``.

Parameter style: the engine's ``?`` placeholders are positional, but
the modulo emulation *duplicates* its operands, so positional styles
cannot express every translated statement.  Translation therefore
renders :class:`~repro.db.sql.ast_nodes.Param` nodes through a
:class:`ParamStyle`, defaulting to SQLite named parameters
(``:p0, :p1, ...``); ``pyformat`` (``%(p0)s``) is the psycopg shape a
future Postgres backend would select.  :func:`bind_params` converts a
positional binding tuple to whatever the style's placeholders expect.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Sequence, Union

from ..db.sql.ast_nodes import (
    Aggregate,
    Between,
    BinaryOp,
    ColumnRef,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    Expr,
    InList,
    InsertStmt,
    IsNull,
    Literal,
    LogicalOp,
    NotOp,
    Param,
    SelectItem,
    SelectStmt,
    Star,
    Statement,
    UpdateStmt,
)
from ..db.types import ColumnType, Schema

#: Engine column types -> SQLite storage classes.  BOOL maps to INTEGER
#: (SQLite has no boolean storage class); the engine's True/False and
#: SQLite's 1/0 compare equal in Python, which is what the differential
#: suite's order-normalized comparison relies on.
SQLITE_TYPES = {
    ColumnType.INT: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.BOOL: "INTEGER",
}


class ParamStyle:
    """How a :class:`Param` node renders and how bindings are shaped."""

    def __init__(self, name: str, template: str, named: bool) -> None:
        self.name = name
        self._template = template
        #: Named styles bind a dict (placeholders may repeat); positional
        #: styles bind the tuple as-is.
        self.named = named

    def placeholder(self, index: int) -> str:
        return self._template.format(index=index)

    def bind(self, params: Sequence) -> Union[Dict[str, Any], Sequence]:
        if self.named:
            return {f"p{index}": value for index, value in enumerate(params)}
        return tuple(params)


#: SQLite named parameters — the default; placeholders may repeat, which
#: the modulo emulation needs.
NAMED = ParamStyle("named", ":p{index}", named=True)
#: psycopg-shaped (``%(p0)s``) for a future DB-API Postgres target.
PYFORMAT = ParamStyle("pyformat", "%(p{index})s", named=True)

PARAMSTYLES = {style.name: style for style in (NAMED, PYFORMAT)}


def quote_ident(name: str) -> str:
    """Double-quote an identifier (doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def quote_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise TypeError(f"cannot render literal {value!r}")


def translate_expr(expr: Expr, style: ParamStyle = NAMED) -> str:
    """Render one expression AST as SQLite SQL text."""
    if isinstance(expr, Literal):
        return quote_literal(expr.value)
    if isinstance(expr, Param):
        return style.placeholder(expr.index)
    if isinstance(expr, ColumnRef):
        return quote_ident(expr.name)
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, BinaryOp):
        left = translate_expr(expr.left, style)
        right = translate_expr(expr.right, style)
        if expr.op == "/":
            # True division with engine NULL-on-zero (SQLite native).
            return f"(CAST({left} AS REAL) / {right})"
        if expr.op == "%":
            # Floor-mod (sign follows the divisor), NULL on zero/NULL
            # divisor.  The divisor repeats, hence named parameters.
            return (
                f"(CASE WHEN ({right}) IS NULL OR ({right}) = 0 THEN NULL "
                f"ELSE ((({left}) % ({right})) + ({right})) % ({right}) END)"
            )
        op = "<>" if expr.op == "!=" else expr.op
        return f"({left} {op} {right})"
    if isinstance(expr, LogicalOp):
        left = translate_expr(expr.left, style)
        right = translate_expr(expr.right, style)
        return f"({left} {expr.op.upper()} {right})"
    if isinstance(expr, NotOp):
        return f"(NOT {translate_expr(expr.operand, style)})"
    if isinstance(expr, IsNull):
        tail = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({translate_expr(expr.operand, style)} {tail})"
    if isinstance(expr, InList):
        items = ", ".join(translate_expr(item, style) for item in expr.items)
        keyword = "NOT IN" if expr.negated else "IN"
        return f"({translate_expr(expr.operand, style)} {keyword} ({items}))"
    if isinstance(expr, Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({translate_expr(expr.operand, style)} {keyword} "
            f"{translate_expr(expr.low, style)} AND "
            f"{translate_expr(expr.high, style)})"
        )
    if isinstance(expr, Aggregate):
        if isinstance(expr.argument, Star):
            argument = "*"
        else:
            argument = translate_expr(expr.argument, style)
        if expr.distinct:
            argument = f"DISTINCT {argument}"
        return f"{expr.func}({argument})"
    raise TypeError(f"cannot translate expression {expr!r}")


def _translate_item(item: SelectItem, style: ParamStyle) -> str:
    text = translate_expr(item.expr, style)
    if item.alias:
        text += f" AS {quote_ident(item.alias)}"
    return text


def translate_order_by(stmt: SelectStmt, style: ParamStyle = NAMED) -> str:
    """ORDER BY terms with engine NULL placement (NULLs last ascending,
    first descending): each key contributes ``(k IS NULL) dir, k dir``."""
    terms = []
    for item in stmt.order_by:
        column = quote_ident(item.column)
        direction = " DESC" if item.descending else ""
        terms.append(f"({column} IS NULL){direction}, {column}{direction}")
    return ", ".join(terms)


def translate_select(stmt: SelectStmt, style: ParamStyle = NAMED) -> str:
    if len(stmt.items) == 1 and isinstance(stmt.items[0].expr, Star):
        items = "*"
    else:
        items = ", ".join(_translate_item(item, style) for item in stmt.items)
    parts = ["SELECT "]
    if stmt.distinct:
        parts.append("DISTINCT ")
    parts.append(f"{items} FROM {quote_ident(stmt.table)}")
    if stmt.where is not None:
        parts.append(f" WHERE {translate_expr(stmt.where, style)}")
    if stmt.group_by:
        grouped = ", ".join(quote_ident(name) for name in stmt.group_by)
        parts.append(f" GROUP BY {grouped}")
    if stmt.order_by:
        parts.append(f" ORDER BY {translate_order_by(stmt, style)}")
    if stmt.limit is not None:
        parts.append(f" LIMIT {translate_expr(stmt.limit, style)}")
    return "".join(parts)


def translate_insert(stmt: InsertStmt, style: ParamStyle = NAMED) -> str:
    columns = ""
    if stmt.columns:
        columns = (
            " (" + ", ".join(quote_ident(name) for name in stmt.columns) + ")"
        )
    values = ", ".join(translate_expr(expr, style) for expr in stmt.values)
    return f"INSERT INTO {quote_ident(stmt.table)}{columns} VALUES ({values})"


def translate_update(stmt: UpdateStmt, style: ParamStyle = NAMED) -> str:
    assignments = ", ".join(
        f"{quote_ident(column)} = {translate_expr(expr, style)}"
        for column, expr in stmt.assignments
    )
    text = f"UPDATE {quote_ident(stmt.table)} SET {assignments}"
    if stmt.where is not None:
        text += f" WHERE {translate_expr(stmt.where, style)}"
    return text


def translate_delete(stmt: DeleteStmt, style: ParamStyle = NAMED) -> str:
    text = f"DELETE FROM {quote_ident(stmt.table)}"
    if stmt.where is not None:
        text += f" WHERE {translate_expr(stmt.where, style)}"
    return text


def translate_create_table(stmt: CreateTableStmt) -> str:
    definitions = []
    for definition in stmt.columns:
        column_type = SQLITE_TYPES[ColumnType.from_name(definition.type_name)]
        text = f"{quote_ident(definition.name)} {column_type}"
        if definition.not_null:
            text += " NOT NULL"
        definitions.append(text)
    exists = "IF NOT EXISTS " if stmt.if_not_exists else ""
    return (
        f"CREATE TABLE {exists}{quote_ident(stmt.table)} "
        f"({', '.join(definitions)})"
    )


def create_table_sql(
    name: str, schema: Schema, if_not_exists: bool = False
) -> str:
    """CREATE TABLE text from an engine :class:`Schema` (the mirroring
    path: ``Database.create_table`` replicates out-of-band DDL)."""
    definitions = []
    for column in schema:
        text = f"{quote_ident(column.name)} {SQLITE_TYPES[column.type]}"
        if not column.nullable:
            text += " NOT NULL"
        definitions.append(text)
    exists = "IF NOT EXISTS " if if_not_exists else ""
    return (
        f"CREATE TABLE {exists}{quote_ident(name)} ({', '.join(definitions)})"
    )


def translate_create_index(stmt: CreateIndexStmt) -> str:
    unique = "UNIQUE " if stmt.unique else ""
    # ``ordered`` / ``clustered`` are engine access-path declarations;
    # every SQLite index is a b-tree, so both collapse to a plain index.
    return (
        f"CREATE {unique}INDEX {quote_ident(stmt.index)} "
        f"ON {quote_ident(stmt.table)} ({quote_ident(stmt.column)})"
    )


def create_index_sql(
    index_name: str, table: str, column: str, unique: bool = False
) -> str:
    unique_sql = "UNIQUE " if unique else ""
    return (
        f"CREATE {unique_sql}INDEX {quote_ident(index_name)} "
        f"ON {quote_ident(table)} ({quote_ident(column)})"
    )


def iter_column_refs(expr: Optional[Expr]) -> Iterator[str]:
    """Yield every column name referenced anywhere inside ``expr``.

    Used by DB-API backends to validate references against the mirror
    schema before shipping SQL to SQLite: SQLite treats a double-quoted
    unknown identifier as a string *literal* (a documented misfeature
    kept for MySQL compatibility), so ``SELECT "nope" FROM t`` returns
    rows of ``'nope'`` instead of raising — the engine's
    ``UnknownColumnError`` would silently vanish without this check.
    """
    if expr is None or isinstance(expr, (Literal, Param, Star)):
        return
    if isinstance(expr, ColumnRef):
        yield expr.name
        return
    if isinstance(expr, (BinaryOp, LogicalOp)):
        yield from iter_column_refs(expr.left)
        yield from iter_column_refs(expr.right)
        return
    if isinstance(expr, (NotOp, IsNull)):
        yield from iter_column_refs(expr.operand)
        return
    if isinstance(expr, InList):
        yield from iter_column_refs(expr.operand)
        for item in expr.items:
            yield from iter_column_refs(item)
        return
    if isinstance(expr, Between):
        yield from iter_column_refs(expr.operand)
        yield from iter_column_refs(expr.low)
        yield from iter_column_refs(expr.high)
        return
    if isinstance(expr, Aggregate):
        yield from iter_column_refs(expr.argument)
        return
    raise TypeError(f"cannot walk expression {expr!r}")


def translate_statement(
    statement: Statement, style: Optional[ParamStyle] = None
) -> str:
    """Render any statement AST as SQLite SQL text."""
    if style is None:
        style = NAMED
    if isinstance(statement, SelectStmt):
        return translate_select(statement, style)
    if isinstance(statement, InsertStmt):
        return translate_insert(statement, style)
    if isinstance(statement, UpdateStmt):
        return translate_update(statement, style)
    if isinstance(statement, DeleteStmt):
        return translate_delete(statement, style)
    if isinstance(statement, CreateTableStmt):
        return translate_create_table(statement)
    if isinstance(statement, CreateIndexStmt):
        return translate_create_index(statement)
    raise TypeError(f"cannot translate statement {statement!r}")
