"""The stdlib ``sqlite3`` backend: the first real store behind Backend.

Statements still *parse and plan* through the engine's own front end —
the mirror catalog below carries every table's schema, so prepare-time
errors (unknown table/column, INSERT arity, aggregate misuse) and
execution-time coercion errors (``TypeMismatchError``,
``ParamCountError``) surface with exactly the classes the in-memory
oracle raises.  Only the *data* lives in SQLite: a scratch database
file (WAL mode, so pool readers never block the writer), with the
engine AST translated to SQLite text by :mod:`repro.backends.dialect`.

Design notes:

* **Pool + thread-local connections.**  Autocommit statements run on a
  ``server_workers``-sized pool, one SQLite connection per worker
  thread — same submission shape as the in-memory server, so the
  client's async pipeline (and its thread-count plateau) is unchanged.
* **Transactions are real.**  ``begin_transaction`` opens a dedicated
  connection and issues ``BEGIN``; commit/rollback issue real
  ``COMMIT``/``ROLLBACK``.  The engine's strict-2PL table locks
  (:class:`repro.db.txn.LockManager`) still sit on top — transaction
  conflict behavior (waits, ``TransactionTimeoutError``) matches the
  oracle, and SQLite's single-writer lock underneath never admits what
  2PL would forbid.  Write-versioning and uncommitted-write marks are
  driven from this layer (the "client-tracked" invalidation mode: a
  DB-API server cannot push), so the cache-consistency protocol is
  byte-for-byte the in-memory one.
* **Set-oriented dispatch maps to SQL.**  A coalesced batch over a
  ``col = ?`` SELECT executes once as ``WHERE col IN (...)`` and is
  demultiplexed per binding; INSERT batches go through ``executemany``
  under a savepoint (falling back to per-binding execution to preserve
  per-slot fault isolation).
"""

from __future__ import annotations

import itertools
import os
import shutil
import sqlite3
import tempfile
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..db.catalog import Catalog
from ..db.disk import SimulatedDisk
from ..db.errors import (
    ConstraintError,
    DatabaseError,
    ParamCountError,
    PlanError,
    ServerShutdownError,
    StatementHandleError,
    TransactionStateError,
    TransactionTimeoutError,
)
from ..db.latency import INSTANT, LatencyMeter, LatencyProfile
from ..db.plan import BindingOutcome, Planner, QueryResult, demuxable
from ..db.plan.expr_eval import RowEvaluator
from ..db.plan.operators import _item_name
from ..db.server import PreparedStatement, ServerStats
from ..db.sql import parse
from ..db.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    InsertStmt,
    Param,
    SelectStmt,
    Star,
    Statement,
    UpdateStmt,
    is_write,
)
from ..db.txn import ABORTED, COMMITTED, Transaction, TransactionManager
from ..db.types import Column, ColumnType, Schema
from .base import Backend
from .dialect import (
    NAMED,
    PARAMSTYLES,
    ParamStyle,
    create_index_sql,
    create_table_sql,
    iter_column_refs,
    quote_ident,
    translate_expr,
    translate_statement,
)


def _check_params(expected: int, params: Sequence) -> None:
    if expected != len(params):
        raise ParamCountError(expected, len(params))


class SqlitePreparedStatement(PreparedStatement):
    """A prepared statement carrying its SQLite translation."""

    __slots__ = ("translated",)

    def __init__(
        self, statement_id, sql, ast, plan, version, origin, translated
    ) -> None:
        super().__init__(statement_id, sql, ast, plan, version, origin=origin)
        self.translated = translated


class _SqliteTransactionManager(TransactionManager):
    """The engine transaction manager with SQLite durability.

    Reuses the 2PL lock manager, state machine, async-read drain and
    the invalidation/data-change/release hooks verbatim; the undo log
    stays empty (SQLite's journal reverses data changes), so inherited
    rollback bookkeeping is a no-op beyond the hooks.  Each transaction
    owns a dedicated SQLite connection plus a statement lock (async
    reads execute on pool threads against the same connection).
    """

    def __init__(self, backend: "SqliteBackend") -> None:
        super().__init__(backend.catalog)
        self._backend = backend

    def begin(self) -> Transaction:
        txn = super().begin()
        connection = self._backend._new_connection()
        connection.execute("BEGIN")
        txn._sqlite = connection
        txn._sqlite_lock = threading.Lock()
        return txn

    def _finish_sqlite(self, txn: Transaction, command: str) -> None:
        with txn._sqlite_lock:
            try:
                txn._sqlite.execute(command)
            finally:
                self._backend._close_connection(txn._sqlite)

    def commit(self, txn: Transaction) -> None:
        txn._require_active()
        txn._wait_drained()
        self._finish_sqlite(txn, "COMMIT")
        with txn._state_lock:
            txn._state = COMMITTED
        # Commit-boundary broadcast, exactly like the in-memory server:
        # shared caches drop readers of every written table before the
        # 2PL locks release.
        self._broadcast_writes(txn)
        self._finish(txn)

    def rollback(self, txn: Transaction) -> None:
        txn._require_active()
        txn._wait_drained()
        self._finish_sqlite(txn, "ROLLBACK")
        with txn._state_lock:
            txn._state = ABORTED
        # No invalidation broadcast (the pre-transaction data was just
        # restored), but the restore is a data change: bump versions so
        # overlapping cached reads fail their publication check.
        if self.data_change_hook is not None:
            for table in txn.written_tables():
                self.data_change_hook(table)
        self._finish(txn)


class SqliteBackend(Backend):
    """Executes the engine's SQL subset against a scratch SQLite file."""

    backend_name = "sqlite"

    DEFAULT_MAX_PREPARED = 512

    def __init__(
        self,
        profile: LatencyProfile = INSTANT,
        meter: Optional[LatencyMeter] = None,
        max_prepared: int = DEFAULT_MAX_PREPARED,
        default_executor: Optional[str] = None,
        paramstyle: Any = "named",
    ) -> None:
        if max_prepared < 1:
            raise ValueError(f"max_prepared must be >= 1, got {max_prepared}")
        super().__init__(default_executor=default_executor)
        self._profile = profile
        self._meter = meter if meter is not None else LatencyMeter()
        if isinstance(paramstyle, ParamStyle):
            self._style = paramstyle
        else:
            try:
                self._style = PARAMSTYLES[paramstyle]
            except KeyError:
                raise ValueError(
                    f"unknown paramstyle {paramstyle!r} "
                    f"(expected one of {tuple(PARAMSTYLES)})"
                ) from None
        #: Scratch database directory (removed at shutdown, or by the
        #: finalizer if the backend is dropped without one).
        self._tmpdir = tempfile.mkdtemp(prefix="repro-sqlite-")
        self._path = os.path.join(self._tmpdir, "db.sqlite3")
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, self._tmpdir, True
        )
        #: Schema mirror: an engine catalog holding every table's schema
        #: (heaps stay empty — SQLite holds the rows).  Planning against
        #: it reproduces the oracle's prepare-time and coercion errors.
        self._mirror_disk = SimulatedDisk(INSTANT, LatencyMeter())
        self._catalog = Catalog(self._mirror_disk)
        self._planner = Planner(self._catalog)
        self._pool = ThreadPoolExecutor(
            max_workers=profile.server_workers,
            thread_name_prefix=f"sqlite-{profile.name}",
        )
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._lock = threading.Lock()
        self.max_prepared = max_prepared
        self._prepared: Dict[int, PreparedStatement] = {}
        self._plan_cache: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        self._statement_ids = itertools.count(1)
        self._catalog_version = 0
        self._active = 0
        self._shutdown = False
        self.stats = ServerStats()
        self.txns = _SqliteTransactionManager(self)
        self.txns.invalidation_hook = self.broadcast_invalidation
        self.txns.data_change_hook = self.note_data_change
        self.txns.release_hook = self.clear_uncommitted
        # First connection creates the file and flips it to WAL, so
        # pool readers never block the (single) writer.
        self._connection()

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    @property
    def profile(self) -> LatencyProfile:
        return self._profile

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def meter(self) -> LatencyMeter:
        return self._meter

    @property
    def path(self) -> str:
        return self._path

    def _new_connection(self) -> sqlite3.Connection:
        connection = sqlite3.connect(
            self._path,
            timeout=5.0,
            isolation_level=None,  # autocommit; BEGIN/COMMIT are explicit
            check_same_thread=False,
        )
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=OFF")
        connection.execute("PRAGMA busy_timeout=5000")
        with self._lock:
            self._connections.append(connection)
        return connection

    def _close_connection(self, connection: sqlite3.Connection) -> None:
        with self._lock:
            try:
                self._connections.remove(connection)
            except ValueError:
                pass
        try:
            connection.close()
        except sqlite3.Error:  # pragma: no cover - close is best-effort
            pass

    def _connection(self) -> sqlite3.Connection:
        """This thread's autocommit connection (created on first use)."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._new_connection()
            self._local.connection = connection
        return connection

    def _run_sqlite(self, txn: Optional[Transaction], callback):
        """Run ``callback(connection)`` on the right connection with
        DB-API errors mapped onto the engine's hierarchy."""
        try:
            if txn is not None:
                with txn._sqlite_lock:
                    return callback(txn._sqlite)
            return callback(self._connection())
        except sqlite3.IntegrityError as exc:
            raise ConstraintError(str(exc)) from exc
        except sqlite3.OperationalError as exc:
            message = str(exc)
            if "locked" in message or "busy" in message:
                raise TransactionTimeoutError(message) from exc
            raise DatabaseError(message) from exc
        except sqlite3.Error as exc:
            raise DatabaseError(str(exc)) from exc

    # ------------------------------------------------------------------
    # preparation (same bounded LRU contract as the in-memory server)
    # ------------------------------------------------------------------
    def prepare(self, sql: str) -> PreparedStatement:
        with self._lock:
            cached = self._plan_cache.get(sql)
            if cached is not None and cached.catalog_version == self._catalog_version:
                self._plan_cache.move_to_end(sql)
                return cached
        ast = parse(sql)
        plan = self._planner.plan(ast)
        translated = translate_statement(ast, self._style)
        with self._lock:
            previous = self._plan_cache.get(sql)
            if previous is not None:
                if previous.catalog_version == self._catalog_version:
                    self._plan_cache.move_to_end(sql)
                    return previous
                self._prepared.pop(previous.statement_id, None)
            prepared = SqlitePreparedStatement(
                next(self._statement_ids),
                sql,
                ast,
                plan,
                self._catalog_version,
                self,
                translated,
            )
            self._prepared[prepared.statement_id] = prepared
            self._plan_cache[sql] = prepared
            self._plan_cache.move_to_end(sql)
            self.stats.statements_prepared += 1
            while len(self._plan_cache) > self.max_prepared:
                _sql, evicted = self._plan_cache.popitem(last=False)
                self._prepared.pop(evicted.statement_id, None)
                self.stats.evictions += 1
        return prepared

    def prepared(self, statement_id: int) -> PreparedStatement:
        with self._lock:
            try:
                return self._prepared[statement_id]
            except KeyError:
                raise StatementHandleError(
                    f"unknown prepared statement id {statement_id}"
                ) from None

    def invalidate_plans(self) -> None:
        """Force re-planning (called after out-of-band DDL)."""
        with self._lock:
            self._catalog_version += 1
        self.broadcast_invalidation(None)

    # ------------------------------------------------------------------
    # submission (pool-bounded, same future shape as the oracle)
    # ------------------------------------------------------------------
    def _require_running(self) -> None:
        with self._lock:
            if self._shutdown:
                raise ServerShutdownError("server is shut down")

    def submit(
        self,
        sql: str,
        params: Sequence = (),
        txn: Optional[Transaction] = None,
        executor: Optional[str] = None,
    ) -> "Future[QueryResult]":
        executor = self.resolve_executor(executor)
        self._require_running()
        return self._pool.submit(
            self._run_sql, sql, tuple(params), txn, executor
        )

    def submit_prepared(
        self,
        prepared: PreparedStatement,
        params: Sequence = (),
        txn: Optional[Transaction] = None,
        span=None,
        executor: Optional[str] = None,
    ) -> "Future[QueryResult]":
        executor = self.resolve_executor(executor)
        self._require_running()
        return self._pool.submit(
            self._run_prepared, prepared, tuple(params), txn, span, executor
        )

    def submit_prepared_batch(
        self,
        prepared: PreparedStatement,
        bindings: Sequence[Sequence],
        txn: Optional[Transaction] = None,
        span=None,
        executor: Optional[str] = None,
    ) -> "Future[List[BindingOutcome]]":
        executor = self.resolve_executor(executor)
        self._require_running()
        snapshot = [tuple(binding) for binding in bindings]
        return self._pool.submit(
            self._run_prepared_batch, prepared, snapshot, txn, span, executor
        )

    def begin_transaction(self) -> Transaction:
        """Start an explicit transaction (2PL locks over a real BEGIN)."""
        self._require_running()
        return self.txns.begin()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run_sql(
        self,
        sql: str,
        params: tuple,
        txn: Optional[Transaction] = None,
        executor: Optional[str] = None,
    ) -> QueryResult:
        return self._run_prepared(self.prepare(sql), params, txn, executor=executor)

    def _run_prepared(
        self,
        prepared: PreparedStatement,
        params: tuple,
        txn: Optional[Transaction] = None,
        span=None,
        executor: Optional[str] = None,
    ) -> QueryResult:
        exec_span = (
            span.child("server.execute", statement_id=prepared.statement_id)
            if span is not None
            else None
        )
        try:
            return self._execute_prepared(
                prepared, params, txn, exec_span, executor
            )
        except BaseException as exc:
            if exec_span is not None:
                exec_span.set("error", repr(exc))
            raise
        finally:
            if exec_span is not None:
                exec_span.end()

    def _execute_prepared(
        self,
        prepared: PreparedStatement,
        params: tuple,
        txn: Optional[Transaction],
        exec_span=None,
        executor: Optional[str] = None,
    ) -> QueryResult:
        executor = self.resolve_executor(executor)
        with self._lock:
            stale = prepared.catalog_version != self._catalog_version
        if stale:
            prepared = self.prepare(prepared.sql)
        if txn is not None:
            self._lock_for_txn(txn, prepared.ast)
        write = is_write(prepared.ast)
        table = getattr(prepared.ast, "table", None) if write else None
        if write:
            # Same mark-then-bump order as the in-memory write path (and
            # deliberately *before* execution): a concurrent cached read
            # overlapping the write window is caught by the reader's
            # token-then-check sequence either way.
            if txn is not None and txn.note_write(table):
                self.mark_uncommitted(table)
            self.note_data_change(table)
        with self._lock:
            self._active += 1
            if self._active > self.stats.peak_concurrency:
                self.stats.peak_concurrency = self._active
        try:
            result = self._run_statement(prepared, params, txn)
            if exec_span is not None:
                exec_span.set("write", write)
                exec_span.set("executor", executor)
                exec_span.set("backend", self.backend_name)
                rows = getattr(result, "rowcount", None)
                if rows is not None:
                    exec_span.set("rows", rows)
            with self._lock:
                self.stats.statements_executed += 1
                if write:
                    self.stats.writes_executed += 1
                    if isinstance(
                        prepared.ast, (CreateTableStmt, CreateIndexStmt)
                    ):
                        self._catalog_version += 1
            if write and txn is None:
                # Autocommit writes broadcast immediately; transactional
                # writes defer to the commit boundary (see the manager).
                self.broadcast_invalidation(table)
            return result
        finally:
            with self._lock:
                self._active -= 1

    def _run_statement(
        self,
        prepared: PreparedStatement,
        params: tuple,
        txn: Optional[Transaction],
    ) -> QueryResult:
        ast = prepared.ast
        _check_params(ast.param_count, params)
        self._validate_refs(ast)
        if isinstance(ast, SelectStmt):
            return self._exec_select(prepared, params, txn)
        if isinstance(ast, InsertStmt):
            return self._exec_insert(ast, params, txn)
        if isinstance(ast, UpdateStmt):
            return self._exec_update(ast, params, txn)
        if isinstance(ast, DeleteStmt):
            return self._exec_delete(ast, params, txn)
        if isinstance(ast, CreateTableStmt):
            return self._exec_create_table(ast)
        if isinstance(ast, CreateIndexStmt):
            return self._exec_create_index(ast)
        raise PlanError(f"cannot execute statement: {ast!r}")

    def _validate_refs(self, ast: Statement) -> None:
        """Raise ``UnknownColumnError`` for any column reference not in
        the table's schema.

        SQLite would never surface these: a double-quoted unknown
        identifier degrades to a string literal, so ``SELECT nope FROM
        t`` returns rows of ``'nope'`` and ``WHERE nope = 1`` silently
        matches nothing.  The in-memory engine raises eagerly for
        select items, GROUP BY and ORDER BY, and per evaluated row for
        WHERE — this backend validates everything eagerly, which agrees
        with the engine on every non-empty table (the differential
        suite's error-parity cases all run against loaded tables).
        """
        names: List[str] = []
        if isinstance(ast, SelectStmt):
            for item in ast.items:
                names.extend(iter_column_refs(item.expr))
            names.extend(iter_column_refs(ast.where))
            names.extend(ast.group_by)
            names.extend(order.column for order in ast.order_by)
            names.extend(iter_column_refs(ast.limit))
        elif isinstance(ast, UpdateStmt):
            for _column, expr in ast.assignments:
                names.extend(iter_column_refs(expr))
            names.extend(iter_column_refs(ast.where))
        elif isinstance(ast, DeleteStmt):
            names.extend(iter_column_refs(ast.where))
        else:
            return
        schema = self._catalog.table(ast.table).heap.schema
        for name in names:
            schema.position(name, ast.table)

    # -- SELECT ---------------------------------------------------------
    def _output_names(self, stmt: SelectStmt, schema: Schema) -> Tuple[str, ...]:
        if len(stmt.items) == 1 and isinstance(stmt.items[0].expr, Star):
            return schema.names()
        return tuple(
            _item_name(item, position)
            for position, item in enumerate(stmt.items)
        )

    def _check_limit(self, stmt: SelectStmt, schema: Schema, params: tuple) -> None:
        """Reproduce the engine's LIMIT validation (PlanError on a
        negative or non-integer limit; SQLite would silently accept)."""
        if stmt.limit is None:
            return
        evaluator = RowEvaluator(schema, stmt.table, params)
        count = evaluator.evaluate(stmt.limit, ())
        if not isinstance(count, int) or count < 0:
            raise PlanError(
                f"LIMIT must be a non-negative integer, got {count!r}"
            )

    def _exec_select(
        self,
        prepared: "SqlitePreparedStatement",
        params: tuple,
        txn: Optional[Transaction],
    ) -> QueryResult:
        stmt = prepared.ast
        schema = self._catalog.table(stmt.table).heap.schema
        self._check_limit(stmt, schema, params)
        bound = self._style.bind(params)

        def run(connection):
            return connection.execute(prepared.translated, bound).fetchall()

        rows = self._run_sqlite(txn, run)
        return QueryResult(
            columns=self._output_names(stmt, schema),
            rows=[tuple(row) for row in rows],
        )

    # -- INSERT ---------------------------------------------------------
    def _insert_row(self, stmt: InsertStmt, params: tuple) -> tuple:
        """Evaluate and coerce one INSERT's row exactly like the engine
        (same evaluator, same schema coercion, same error classes)."""
        info = self._catalog.table(stmt.table)
        schema = info.heap.schema
        if stmt.columns:
            positions = schema.project_positions(stmt.columns, stmt.table)
        else:
            positions = tuple(range(len(schema)))
        evaluator = RowEvaluator(schema, stmt.table, params)
        values: List[Any] = [None] * len(schema)
        for position, expr in zip(positions, stmt.values):
            values[position] = evaluator.evaluate(expr, ())
        return schema.coerce_row(values)

    def _insert_sql(self, stmt: InsertStmt, schema: Schema) -> str:
        holes = ", ".join("?" for _ in range(len(schema)))
        return f"INSERT INTO {quote_ident(stmt.table)} VALUES ({holes})"

    def _exec_insert(
        self, stmt: InsertStmt, params: tuple, txn: Optional[Transaction]
    ) -> QueryResult:
        info = self._catalog.table(stmt.table)
        if txn is not None and info.heap.is_clustered:
            raise TransactionStateError(
                f"transactional INSERT into clustered table {stmt.table!r} "
                "is not supported: clustered inserts shift row ids, which "
                "the logical undo log cannot reverse"
            )
        row = self._insert_row(stmt, params)
        sql = self._insert_sql(stmt, info.heap.schema)
        self._run_sqlite(txn, lambda connection: connection.execute(sql, row))
        return QueryResult(rowcount=1)

    # -- UPDATE ---------------------------------------------------------
    def _exec_update(
        self, stmt: UpdateStmt, params: tuple, txn: Optional[Transaction]
    ) -> QueryResult:
        """Read-modify-write: candidate rows come back from SQLite, the
        engine's evaluator computes each assignment and the schema
        coerces the result — identical value semantics and error
        classes to the oracle — then each row writes back by rowid."""
        info = self._catalog.table(stmt.table)
        schema = info.heap.schema
        targets = [
            (schema.position(column, stmt.table), expr)
            for column, expr in stmt.assignments
        ]
        select = f"SELECT rowid, * FROM {quote_ident(stmt.table)}"
        if stmt.where is not None:
            select += f" WHERE {translate_expr(stmt.where, self._style)}"
        bound = self._style.bind(params)
        matched = self._run_sqlite(
            txn, lambda connection: connection.execute(select, bound).fetchall()
        )
        evaluator = RowEvaluator(schema, stmt.table, params)
        assignments = ", ".join(
            f"{quote_ident(column.name)} = ?" for column in schema
        )
        update = (
            f"UPDATE {quote_ident(stmt.table)} SET {assignments} "
            "WHERE rowid = ?"
        )
        # Row-by-row like the engine's update loop: a coercion or
        # constraint failure stops mid-statement with earlier rows
        # applied (autocommit has no undo; in a transaction, rollback
        # reverses everything).
        for fetched in matched:
            row_id, row = fetched[0], tuple(fetched[1:])
            new_row = list(row)
            for position, expr in targets:
                new_row[position] = evaluator.evaluate(expr, row)
            coerced = schema.coerce_row(new_row)
            self._run_sqlite(
                txn,
                lambda connection, args=(*coerced, row_id): connection.execute(
                    update, args
                ),
            )
        return QueryResult(rowcount=len(matched))

    # -- DELETE ---------------------------------------------------------
    def _exec_delete(
        self, stmt: DeleteStmt, params: tuple, txn: Optional[Transaction]
    ) -> QueryResult:
        sql = f"DELETE FROM {quote_ident(stmt.table)}"
        if stmt.where is not None:
            sql += f" WHERE {translate_expr(stmt.where, self._style)}"
        bound = self._style.bind(params)
        count = self._run_sqlite(
            txn, lambda connection: connection.execute(sql, bound).rowcount
        )
        return QueryResult(rowcount=max(count, 0))

    # -- DDL -------------------------------------------------------------
    def _exec_create_table(self, stmt: CreateTableStmt) -> QueryResult:
        columns = [
            Column(
                definition.name,
                ColumnType.from_name(definition.type_name),
                nullable=not definition.not_null,
            )
            for definition in stmt.columns
        ]
        # Mirror first: duplicate-table errors (CatalogError) surface
        # from the engine catalog before SQLite is touched.
        self._catalog.create_table(
            stmt.table, Schema(columns), if_not_exists=stmt.if_not_exists
        )
        sql = translate_statement(stmt)
        self._run_sqlite(None, lambda connection: connection.execute(sql))
        return QueryResult(rowcount=0)

    def _exec_create_index(self, stmt: CreateIndexStmt) -> QueryResult:
        if stmt.clustered:
            raise PlanError(
                "clustering is declared at CREATE TABLE time via the "
                "Database.create_table(clustered_on=...) API"
            )
        self._catalog.create_index(
            stmt.index,
            stmt.table,
            stmt.column,
            ordered=stmt.ordered,
            unique=stmt.unique,
        )
        sql = translate_statement(stmt)
        self._run_sqlite(None, lambda connection: connection.execute(sql))
        return QueryResult(rowcount=0)

    # ------------------------------------------------------------------
    # set-oriented execution
    # ------------------------------------------------------------------
    def _run_prepared_batch(
        self,
        prepared: PreparedStatement,
        bindings: List[tuple],
        txn: Optional[Transaction] = None,
        span=None,
        executor: Optional[str] = None,
    ) -> List[BindingOutcome]:
        if not bindings:
            return []
        executor = self.resolve_executor(executor)
        with self._lock:
            stale = prepared.catalog_version != self._catalog_version
        if stale:
            prepared = self.prepare(prepared.sql)
        if demuxable(prepared.plan):
            return self._run_select_batch(
                prepared, bindings, txn, span, executor
            )
        if isinstance(prepared.ast, InsertStmt) and txn is None:
            outcomes = self._run_insert_batch_executemany(prepared, bindings)
            if outcomes is not None:
                return outcomes
        # Per-binding fallback: each binding keeps exact single-statement
        # semantics (stats, locks, invalidation broadcasts) — only the
        # transport batched.
        outcomes = []
        for binding in bindings:
            try:
                outcomes.append(
                    self._run_prepared(prepared, binding, txn, span, executor)
                )
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    def _run_select_batch(
        self,
        prepared: "SqlitePreparedStatement",
        bindings: List[tuple],
        txn: Optional[Transaction],
        span,
        executor: str,
    ) -> List[BindingOutcome]:
        """A demuxable (SELECT) batch: one batched call in the stats —
        executed as a single ``WHERE key IN (...)`` statement when the
        statement has the point-lookup shape, else per-binding."""
        exec_span = (
            span.child(
                "server.execute",
                statement_id=prepared.statement_id,
                demux=True,
                bindings=len(bindings),
            )
            if span is not None
            else None
        )
        if txn is not None:
            self._lock_for_txn(txn, prepared.ast)
        with self._lock:
            self._active += 1
            if self._active > self.stats.peak_concurrency:
                self.stats.peak_concurrency = self._active
        try:
            key_column = self._in_demux_key(prepared.ast)
            if exec_span is not None:
                # Same attribute vocabulary as the oracle's batch span:
                # one shared IN-scan vs per-binding probes.
                exec_span.set(
                    "strategy", "scan" if key_column is not None else "probe"
                )
                exec_span.set("executor", executor)
                exec_span.set("backend", self.backend_name)
            if key_column is not None:
                outcomes = self._demux_via_in(
                    prepared, key_column, bindings, txn
                )
            else:
                outcomes = []
                for binding in bindings:
                    try:
                        outcomes.append(
                            self._run_statement(prepared, binding, txn)
                        )
                    except Exception as exc:
                        outcomes.append(exc)
            with self._lock:
                # Same accounting as the oracle's demux path: one
                # statement answered the whole batch.
                self.stats.statements_executed += 1
                self.stats.batched_calls += 1
                self.stats.batched_bindings += len(bindings)
                self.stats.scans_saved += len(bindings) - 1
            return outcomes
        except BaseException as exc:
            if exec_span is not None:
                exec_span.set("error", repr(exc))
            raise
        finally:
            if exec_span is not None:
                exec_span.end()
            with self._lock:
                self._active -= 1

    @staticmethod
    def _in_demux_key(stmt: Statement) -> Optional[str]:
        """The key column when ``stmt`` is a plain single-param
        point-lookup SELECT (``... WHERE key = ?``), else None."""
        if not isinstance(stmt, SelectStmt):
            return None
        if (
            stmt.group_by
            or stmt.is_aggregate
            or stmt.distinct
            or stmt.order_by
            or stmt.limit is not None
            or stmt.param_count != 1
        ):
            return None
        where = stmt.where
        if not isinstance(where, BinaryOp) or where.op != "=":
            return None
        sides = (where.left, where.right)
        column = next(
            (side for side in sides if isinstance(side, ColumnRef)), None
        )
        param = next((side for side in sides if isinstance(side, Param)), None)
        if column is None or param is None:
            return None
        star = len(stmt.items) == 1 and isinstance(stmt.items[0].expr, Star)
        if not star and not all(
            isinstance(item.expr, ColumnRef) for item in stmt.items
        ):
            return None
        return column.name

    def _demux_via_in(
        self,
        prepared: "SqlitePreparedStatement",
        key_column: str,
        bindings: List[tuple],
        txn: Optional[Transaction],
    ) -> List[BindingOutcome]:
        stmt = prepared.ast
        schema = self._catalog.table(stmt.table).heap.schema
        keys: List[Any] = []
        for binding in bindings:
            if len(binding) == 1 and binding[0] is not None:
                if binding[0] not in keys:
                    keys.append(binding[0])
        star = len(stmt.items) == 1 and isinstance(stmt.items[0].expr, Star)
        if star:
            select_list = "*"
            key_position = schema.position(key_column, stmt.table)
            width = len(schema)
        else:
            names = [item.expr.name for item in stmt.items]
            select_list = ", ".join(quote_ident(name) for name in names)
            # The key rides along as an extra trailing column and is
            # stripped before rows reach the client.
            select_list += f", {quote_ident(key_column)}"
            key_position = len(names)
            width = len(names)
        rows: List[tuple] = []
        if keys:
            holes = ", ".join("?" for _ in keys)
            sql = (
                f"SELECT {select_list} FROM {quote_ident(stmt.table)} "
                f"WHERE {quote_ident(key_column)} IN ({holes})"
            )
            rows = self._run_sqlite(
                txn,
                lambda connection: connection.execute(sql, keys).fetchall(),
            )
        by_key: Dict[Any, List[tuple]] = {}
        for fetched in rows:
            row = tuple(fetched)
            by_key.setdefault(row[key_position], []).append(row[:width])
        columns = self._output_names(stmt, schema)
        outcomes: List[BindingOutcome] = []
        for binding in bindings:
            if len(binding) != 1:
                outcomes.append(ParamCountError(1, len(binding)))
                continue
            matches = (
                by_key.get(binding[0], []) if binding[0] is not None else []
            )
            outcomes.append(QueryResult(columns=columns, rows=list(matches)))
        return outcomes

    def _run_insert_batch_executemany(
        self, prepared: "SqlitePreparedStatement", bindings: List[tuple]
    ) -> Optional[List[BindingOutcome]]:
        """INSERT batches map to ``executemany`` under a savepoint.

        Rows that fail evaluation/coercion fault only their own slot;
        the remaining rows insert in one DB-API call.  A constraint
        violation inside ``executemany`` rolls the savepoint back and
        returns None — the caller re-runs per binding so the failing
        row (and only it) carries the error.
        """
        stmt = prepared.ast
        info = self._catalog.table(stmt.table)
        sql = self._insert_sql(stmt, info.heap.schema)
        outcomes: List[BindingOutcome] = [None] * len(bindings)
        rows: List[tuple] = []
        good: List[int] = []
        for position, binding in enumerate(bindings):
            try:
                _check_params(stmt.param_count, binding)
                rows.append(self._insert_row(stmt, binding))
                good.append(position)
            except Exception as exc:
                outcomes[position] = exc
        if rows:
            table = stmt.table
            for _ in good:
                self.note_data_change(table)

            def run(connection):
                connection.execute("SAVEPOINT repro_batch")
                try:
                    connection.executemany(sql, rows)
                except sqlite3.Error:
                    connection.execute("ROLLBACK TO repro_batch")
                    connection.execute("RELEASE repro_batch")
                    return False
                connection.execute("RELEASE repro_batch")
                return True

            try:
                inserted = self._run_sqlite(None, run)
            except Exception:
                inserted = False
            if not inserted:
                return None
            with self._lock:
                self.stats.statements_executed += len(good)
                self.stats.writes_executed += len(good)
            self.broadcast_invalidation(table)
        for position in good:
            outcomes[position] = QueryResult(rowcount=1)
        return outcomes

    # ------------------------------------------------------------------
    # transactions / locking (shared with the oracle)
    # ------------------------------------------------------------------
    def _lock_for_txn(self, txn: Transaction, ast: Statement) -> None:
        if isinstance(ast, (CreateTableStmt, CreateIndexStmt)):
            raise TransactionStateError(
                "DDL inside an explicit transaction is not supported"
            )
        table = getattr(ast, "table", None)
        if table is not None:
            self.txns.lock_for_statement(txn, table, write=is_write(ast))

    # ------------------------------------------------------------------
    # schema mirroring (Database replicates out-of-band DDL/loads here)
    # ------------------------------------------------------------------
    def mirror_create_table(
        self,
        name: str,
        schema: Schema,
        rows_per_page: Optional[int] = None,
        clustered_on: Optional[str] = None,
    ) -> None:
        kwargs = {"clustered_on": clustered_on}
        if rows_per_page is not None:
            kwargs["rows_per_page"] = rows_per_page
        self._catalog.create_table(name, schema, **kwargs)
        sql = create_table_sql(name, schema)
        self._run_sqlite(None, lambda connection: connection.execute(sql))
        self.invalidate_plans()

    def mirror_create_index(
        self,
        index_name: str,
        table: str,
        column: str,
        ordered: bool = False,
        unique: bool = False,
    ) -> None:
        self._catalog.create_index(
            index_name, table, column, ordered=ordered, unique=unique
        )
        sql = create_index_sql(index_name, table, column, unique=unique)
        self._run_sqlite(None, lambda connection: connection.execute(sql))
        self.invalidate_plans()

    def mirror_load(self, table: str, rows: Sequence[Sequence]) -> int:
        """Bulk-load pre-coerced rows (no latency, no stats — mirrors
        ``Database.bulk_load``, which is not a measured operation)."""
        info = self._catalog.table(table)
        schema = info.heap.schema
        coerced = [schema.coerce_row(row) for row in rows]
        if not coerced:
            return 0
        holes = ", ".join("?" for _ in range(len(schema)))
        sql = f"INSERT INTO {quote_ident(table)} VALUES ({holes})"
        self._run_sqlite(
            None, lambda connection: connection.executemany(sql, coerced)
        )
        return len(coerced)

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, object]:
        with self._lock:
            snap = dict(asdict(self.stats))
            snap["prepared_cached"] = len(self._plan_cache)
            snap["registered_caches"] = self.ledger.cache_count
            snap["active"] = self._active
        return snap

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shutdown = True
        self._pool.shutdown(wait=wait)
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
        self._finalizer()

    @property
    def is_shutdown(self) -> bool:
        with self._lock:
            return self._shutdown
