"""The default backend: the simulated in-memory database server.

:class:`repro.db.server.DatabaseServer` *is* the in-memory backend —
the Backend interface was extracted from it, so the class now derives
from :class:`repro.backends.base.Backend` and this module only gives it
its backend-registry name.  It remains the differential-test oracle:
every other backend must agree with it on results, error classes and
cache-invalidation behavior (``tests/test_backend_differential.py``).
"""

from __future__ import annotations

from ..db.server import DatabaseServer as InMemoryBackend

__all__ = ["InMemoryBackend"]
