"""The backend contract under the submission pipeline.

The client stack — :class:`repro.client.connection.Connection`, the
:class:`repro.core.submission.SubmissionPipeline`, the result cache, the
dispatch coalescer, speculation, tracing, metrics — is transport
agnostic: it needs a *store* that can prepare statements, execute them
(one at a time or set-oriented), open transactions, and cooperate with
the cache-consistency protocol.  :class:`Backend` names that surface.

Two implementations ship today:

* :class:`repro.backends.memory.InMemoryBackend` — the simulated
  database server (:class:`repro.db.server.DatabaseServer`), which
  doubles as the differential-test oracle;
* :class:`repro.backends.sqlite.SqliteBackend` — stdlib ``sqlite3``
  behind the same interface, the first real (honest-latency) store.

Invalidation semantics are part of the contract, not an in-memory
accident, so the bookkeeping lives here in
:class:`CacheInvalidationLedger`: per-table write versions (the
optimistic publication token), uncommitted-write marks (reads of dirty
tables bypass the cache) and the registered-cache broadcast.  The
in-memory backend drives the ledger from its server-side write path; a
DB-API backend, which cannot push invalidations from the real server,
drives it from the client-tracked write path — either way the cache
observes identical behavior, which the invalidation-equivalence tests
assert.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Dict, List, Optional, Sequence

#: Backend kinds selectable via ``Database.connect(backend=...)`` /
#: ``aio_connect(backend=...)`` / the ``REPRO_BACKEND`` environment
#: variable / the workload driver's ``--backend`` flag.
BACKENDS = ("memory", "sqlite")


def resolve_backend_name(backend: Optional[str] = None) -> str:
    """Validate a backend name, defaulting from ``REPRO_BACKEND``.

    ``None`` defers to the ``REPRO_BACKEND`` environment variable (the
    CI backend matrix sets it), else ``"memory"`` — mirroring how
    ``REPRO_EXECUTOR`` picks the execution engine.

    >>> resolve_backend_name("memory")
    'memory'
    >>> resolve_backend_name("sqlite")
    'sqlite'
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND", "").strip() or "memory"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {BACKENDS})"
        )
    return backend


class CacheInvalidationLedger:
    """Cache-consistency bookkeeping shared by every backend.

    Three coupled mechanisms (see docs/BACKENDS.md for the protocol
    table):

    * **Registered caches.**  Result caches register weakly; every
      executed write broadcasts a per-table invalidation to all of them
      — transactional writes at commit, never at rollback.
    * **Write versions.**  Every data change (including a rollback's
      restore) bumps the written table's version.  Cached readers
      capture a token before executing and publish only if it is
      unchanged — the optimistic check that keeps a read overlapping
      *any* data change out of the cache.
    * **Uncommitted marks.**  Tables with open transactional writes are
      marked (refcounted per transaction); reads of marked tables
      bypass the cache, because the value observed may be dirty and a
      rolled-back write never broadcasts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Weak references: a cache lives exactly as long as some client
        #: holds it; no unregistration bookkeeping on connection close.
        self._caches: "weakref.WeakSet" = weakref.WeakSet()
        self._write_versions: Dict[str, int] = {}
        self._writes_total = 0
        self._uncommitted: Dict[Optional[str], int] = {}

    # -- cache registry ------------------------------------------------
    def register_cache(self, cache) -> None:
        with self._lock:
            self._caches.add(cache)

    def unregister_cache(self, cache) -> None:
        with self._lock:
            self._caches.discard(cache)

    @property
    def cache_count(self) -> int:
        with self._lock:
            return len(self._caches)

    def broadcast_invalidation(self, table: Optional[str]) -> int:
        """Drop entries reading ``table`` from every registered cache
        (``None`` drops everything); returns total entries dropped."""
        with self._lock:
            caches = list(self._caches)
        dropped = 0
        for cache in caches:
            dropped += cache.invalidate_table(table)
        return dropped

    # -- write versioning ----------------------------------------------
    def note_data_change(self, table: Optional[str]) -> None:
        """Bump the write version of ``table`` (None = unknown target)."""
        with self._lock:
            key = table if table is not None else "*"
            self._write_versions[key] = self._write_versions.get(key, 0) + 1
            self._writes_total += 1

    def read_validity(self, tables) -> int:
        """A token that changes whenever any of ``tables`` may have
        changed (the wildcard observes every write)."""
        with self._lock:
            if "*" in tables:
                return self._writes_total
            return self._write_versions.get("*", 0) + sum(
                self._write_versions.get(table, 0) for table in tables
            )

    # -- uncommitted-write marks ---------------------------------------
    def mark_uncommitted(self, table: Optional[str]) -> None:
        with self._lock:
            self._uncommitted[table] = self._uncommitted.get(table, 0) + 1

    def clear_uncommitted(self, table: Optional[str]) -> None:
        with self._lock:
            count = self._uncommitted.get(table, 0) - 1
            if count > 0:
                self._uncommitted[table] = count
            else:
                self._uncommitted.pop(table, None)

    def has_uncommitted_writes(self, tables) -> bool:
        """Is any of ``tables`` under an open transaction's write?"""
        with self._lock:
            if not self._uncommitted:
                return False
            if None in self._uncommitted or "*" in tables:
                return True
            return any(table in self._uncommitted for table in tables)


class Backend:
    """Base class for executable statement stores.

    Concrete backends must provide::

        prepare(sql) -> PreparedStatement-like   (statement_id, sql, ast,
                                                  plan, origin attributes)
        submit(sql, params, txn, executor=) -> Future[QueryResult]
        submit_prepared(prepared, params, txn=, span=, executor=)
            -> Future[QueryResult]
        submit_prepared_batch(prepared, bindings, txn=, span=, executor=)
            -> Future[List[BindingOutcome]]
        begin_transaction() -> Transaction
        stats / stats_snapshot() / shutdown(wait=) / is_shutdown
        profile / meter / catalog properties

    plus whatever the concrete transport needs.  The ledger delegation,
    executor-kind validation and the blocking convenience calls are
    shared here.
    """

    #: Engine kinds a statement may run under.  Both engines exist only
    #: in the in-memory backend; DB-API backends accept the same values
    #: (connection-level selection must not depend on the store) and
    #: execute however the real engine pleases.
    EXECUTORS = ("row", "columnar")

    #: Short selectable name (a :data:`BACKENDS` member).
    backend_name = "abstract"

    def __init__(self, default_executor: Optional[str] = None) -> None:
        self.ledger = CacheInvalidationLedger()
        if default_executor is None:
            # The vectorized engine is the default; REPRO_EXECUTOR=row
            # flips a whole process (the CI matrix runs both).
            default_executor = (
                os.environ.get("REPRO_EXECUTOR", "").strip() or "columnar"
            )
        if default_executor not in self.EXECUTORS:
            raise ValueError(
                f"unknown executor {default_executor!r} "
                f"(expected one of {self.EXECUTORS})"
            )
        self.default_executor = default_executor

    # ------------------------------------------------------------------
    # executor-kind validation (shared verbatim across backends)
    # ------------------------------------------------------------------
    def resolve_executor(self, executor: Optional[str]) -> str:
        """Validate an executor kind, defaulting to the backend's."""
        if executor is None:
            return self.default_executor
        if executor not in self.EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r} "
                f"(expected one of {self.EXECUTORS})"
            )
        return executor

    # ------------------------------------------------------------------
    # invalidation-ledger delegation
    # ------------------------------------------------------------------
    def register_cache(self, cache) -> None:
        """Register a result cache for write-driven invalidation.

        Every write executed by this backend — through any connection,
        cached or cache-less, autocommit or transactional — broadcasts a
        per-table invalidation to every registered cache; transactional
        writes broadcast at commit, never at rollback.  Registration is
        idempotent and weak: the backend never keeps a cache alive.
        """
        self.ledger.register_cache(cache)

    def unregister_cache(self, cache) -> None:
        self.ledger.unregister_cache(cache)

    @property
    def registered_cache_count(self) -> int:
        return self.ledger.cache_count

    def broadcast_invalidation(self, table: Optional[str]) -> int:
        return self.ledger.broadcast_invalidation(table)

    def note_data_change(self, table: Optional[str]) -> None:
        self.ledger.note_data_change(table)

    def read_validity(self, tables) -> int:
        return self.ledger.read_validity(tables)

    def mark_uncommitted(self, table: Optional[str]) -> None:
        self.ledger.mark_uncommitted(table)

    def clear_uncommitted(self, table: Optional[str]) -> None:
        self.ledger.clear_uncommitted(table)

    def has_uncommitted_writes(self, tables) -> bool:
        return self.ledger.has_uncommitted_writes(tables)

    # ------------------------------------------------------------------
    # blocking conveniences over the async primitives
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: Sequence = (),
        txn=None,
        executor: Optional[str] = None,
    ):
        """Synchronous execution (still bounded by the worker pool)."""
        return self.submit(sql, params, txn, executor=executor).result()

    def execute_prepared_batch(
        self,
        prepared,
        bindings: Sequence[Sequence],
        txn=None,
        executor: Optional[str] = None,
    ) -> List:
        """Blocking set-oriented execution: one statement over N binding
        sets; one outcome (result or exception) per binding, in order."""
        return self.submit_prepared_batch(
            prepared, bindings, txn, executor=executor
        ).result()
