"""Pluggable statement stores behind the submission pipeline.

See docs/BACKENDS.md for the interface contract and the invalidation
semantics table.  ``InMemoryBackend`` and ``SqliteBackend`` are exposed
lazily (PEP 562): they import :mod:`repro.db.server`, which itself
imports :mod:`repro.backends.base`, and an eager import here would
close that cycle mid-initialization.
"""

from __future__ import annotations

from .base import (
    BACKENDS,
    Backend,
    CacheInvalidationLedger,
    resolve_backend_name,
)

__all__ = [
    "BACKENDS",
    "Backend",
    "CacheInvalidationLedger",
    "InMemoryBackend",
    "SqliteBackend",
    "resolve_backend_name",
]

_LAZY = {
    "InMemoryBackend": ("repro.backends.memory", "InMemoryBackend"),
    "SqliteBackend": ("repro.backends.sqlite", "SqliteBackend"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value
