"""Command line front end: ``python -m repro <file.py>``.

Rewrites a Python source file for asynchronous query submission and
prints (or writes) the result, plus the per-loop transformation report
— the command-line equivalent of the paper's source-to-source tool.

Three subcommands ride alongside the transformer:

* ``repro stats [--json]`` — run a small demonstration workload through
  the full pipeline (cache + set-oriented dispatch + metrics) and print
  the unified :class:`~repro.obs.metrics.MetricsRegistry` snapshot;
* ``repro trace [--json]`` — run traced queries and print the recorded
  span trees (or the raw span export as JSON);
* ``repro workload run`` — the open/closed-loop load driver
  (:mod:`repro.bench.driver`): sustained concurrent traffic over the
  hotset workload with per-op p50–p99, ``BENCH_workload.json``
  emission, and ``--slo`` gating.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis.applicability import analyze_source
from .transform import asyncify_source, prefetch_source
from .transform.errors import TransformError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Rewrite blocking query loops for asynchronous submission "
            "(Chavan et al., ICDE 2011)."
        ),
    )
    from . import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument("source", help="Python source file to transform")
    parser.add_argument(
        "-o", "--output",
        help="write the transformed source here (default: stdout)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help=(
            "print the transformation report (per-loop outcomes and, "
            "with --prefetch, per-site hoists) to stderr"
        ),
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="only analyze applicability (Table I style); do not rewrite",
    )
    parser.add_argument(
        "--no-reorder", action="store_true",
        help="disable the statement reordering algorithm (Section IV)",
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="bound in-flight submissions per loop (Discussion section)",
    )
    parser.add_argument(
        "--prefetch", action="store_true",
        help=(
            "additionally run prefetch insertion: hoist remaining "
            "straight-line query submissions to their earliest safe "
            "point (repro.prefetch)"
        ),
    )
    parser.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help=(
            "embed a __repro_prefetch__ result-cache capacity hint in "
            "the output (requires --prefetch)"
        ),
    )
    parser.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help=(
            "embed a result-cache TTL (max staleness, seconds) in the "
            "__repro_prefetch__ hint (requires --prefetch)"
        ),
    )
    parser.add_argument(
        "--speculate", action="store_true",
        help=(
            "enable speculative (unguarded) prefetch: a read-only "
            "submit may be hoisted above its consuming conditional even "
            "when the guard is unknown, as a speculate_query dispatch "
            "whose handle is abandoned if the guard turns out false; "
            "each site is gated by the cost model's breakeven advice "
            "(requires --prefetch)"
        ),
    )
    parser.add_argument(
        "--speculate-threshold", type=float, default=None, metavar="P",
        help=(
            "minimum hit probability (0..1) the pass's static estimate "
            "(0.5 for every site) must clear to speculate — in effect "
            "an on/off confidence gate today: above 0.5 disables all "
            "speculation, otherwise the profile's breakeven point "
            "decides (requires --speculate; per-site estimates are "
            "policy/API-level)"
        ),
    )
    parser.add_argument(
        "--coalesce", action="store_true",
        help=(
            "embed a set-oriented dispatch hint ('coalesce': True) in "
            "the __repro_prefetch__ output: the runtime should open its "
            "connections with coalesce=True, merging same-statement "
            "submits queued behind the executor into single batched "
            "server calls (off by default; requires --prefetch)"
        ),
    )
    parser.add_argument(
        "--coalesce-window", type=int, default=None, metavar="N",
        help=(
            "add 'coalesce_window': N to the hint — the maximum number "
            "of outstanding same-statement submits merged into one "
            "batch (requires --coalesce; N >= 2)"
        ),
    )
    parser.add_argument(
        "--executor", choices=("row", "columnar"), default=None,
        help=(
            "embed an execution-engine hint ('executor': ENGINE) in the "
            "__repro_prefetch__ output: the runtime should open its "
            "connections with executor=ENGINE — 'columnar' is the "
            "server default (batch-at-a-time scans, late "
            "materialization); 'row' selects the tuple-at-a-time "
            "oracle engine (requires --prefetch)"
        ),
    )
    parser.add_argument(
        "--trace", action="store_true",
        help=(
            "embed an end-to-end tracing hint ('trace': True) in the "
            "__repro_prefetch__ output: the runtime should open its "
            "connections with trace=True so every request records a "
            "span tree (requires --prefetch)"
        ),
    )
    parser.add_argument(
        "--commuting-updates", action="store_true",
        help="declare execute_update calls commutative (Experiment 4)",
    )
    parser.add_argument(
        "--barrier", action="append", default=[], metavar="METHOD",
        help=(
            "treat METHOD calls as transaction-scope barriers that no "
            "statement may cross (begin/commit/rollback/transaction are "
            "built in); repeatable"
        ),
    )
    return parser


def _demo_workload(db, conn, ops: int) -> None:
    """A tiny hotset workload exercising every pipeline stage: repeated
    reads (cache hits), bursts of same-statement submits (coalescing),
    and blocking calls — enough signal for stats/trace output."""
    db.create_table("part", ("part_key", "int"), ("category_id", "int"))
    db.bulk_load("part", [(i, i % 7) for i in range(200)])
    sql = "SELECT count(*) FROM part WHERE category_id = ?"
    for round_no in range(max(1, ops // 10)):
        handles = [conn.submit_query(sql, [c % 7]) for c in range(10)]
        for handle in handles:
            conn.fetch_result(handle)
        conn.execute_query(sql, [round_no % 7])


def stats_main(argv: Sequence[str]) -> int:
    """``repro stats``: run the demo workload, print the unified
    metrics snapshot (counters, histogram percentiles, every registered
    stats source)."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description=(
            "Run a demonstration workload through the cache-aware, "
            "set-oriented submission pipeline and print the unified "
            "metrics registry snapshot."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the snapshot as JSON"
    )
    parser.add_argument(
        "--ops", type=int, default=100, metavar="N",
        help="approximate number of queries to run (default 100)",
    )
    args = parser.parse_args(argv)
    from .db import Database, INSTANT
    from .prefetch.cache import ResultCache

    with Database(INSTANT) as db:
        with db.connect(
            result_cache=ResultCache(capacity=256),
            coalesce=True,
            metrics=True,
        ) as conn:
            _demo_workload(db, conn, args.ops)
            snapshot = db.stats_snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, default=str))
    else:
        _print_tree(snapshot)
    return 0


def trace_main(argv: Sequence[str]) -> int:
    """``repro trace``: run traced queries and print the span trees."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Run traced queries through the submission pipeline and "
            "print the recorded span trees (submit -> cache -> coalesce "
            "-> dispatch -> server execute -> fetch)."
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the raw span export as JSON instead of the tree view",
    )
    parser.add_argument(
        "--ops", type=int, default=20, metavar="N",
        help="approximate number of queries to run (default 20)",
    )
    args = parser.parse_args(argv)
    from .db import Database, INSTANT
    from .prefetch.cache import ResultCache

    with Database(INSTANT) as db:
        with db.connect(
            result_cache=ResultCache(capacity=256),
            coalesce=True,
            trace=True,
        ) as conn:
            _demo_workload(db, conn, args.ops)
            if args.json:
                print(json.dumps(db.tracer.export(), indent=2, default=str))
            else:
                print(db.tracer.format_traces())
    return 0


def _print_tree(value, indent: int = 0) -> None:
    """Plain-text rendering of a nested snapshot dict."""
    pad = "  " * indent
    for key, item in value.items():
        if isinstance(item, dict):
            print(f"{pad}{key}:")
            _print_tree(item, indent + 1)
        elif isinstance(item, float):
            print(f"{pad}{key}: {item:.6g}")
        else:
            print(f"{pad}{key}: {item}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stats":
        return stats_main(list(argv[1:]))
    if argv and argv[0] == "trace":
        return trace_main(list(argv[1:]))
    if argv and argv[0] == "workload":
        from .bench.driver import workload_main

        return workload_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_size is not None:
        if not args.prefetch:
            parser.error("--cache-size requires --prefetch")
        if args.cache_size < 1:
            parser.error(f"--cache-size must be >= 1, got {args.cache_size}")
    if args.cache_ttl is not None:
        if not args.prefetch:
            parser.error("--cache-ttl requires --prefetch")
        if args.cache_ttl <= 0:
            parser.error(f"--cache-ttl must be > 0, got {args.cache_ttl}")
    if args.speculate and not args.prefetch:
        parser.error("--speculate requires --prefetch")
    if args.coalesce and not args.prefetch:
        parser.error("--coalesce requires --prefetch")
    if args.trace and not args.prefetch:
        parser.error("--trace requires --prefetch")
    if args.executor is not None and not args.prefetch:
        parser.error("--executor requires --prefetch")
    if args.coalesce_window is not None:
        if not args.coalesce:
            parser.error("--coalesce-window requires --coalesce")
        if args.coalesce_window < 2:
            parser.error(
                f"--coalesce-window must be >= 2, got {args.coalesce_window}"
            )
    if args.speculate_threshold is not None:
        if not args.speculate:
            parser.error("--speculate-threshold requires --speculate")
        if not 0.0 <= args.speculate_threshold <= 1.0:
            parser.error(
                "--speculate-threshold must be within [0, 1], got "
                f"{args.speculate_threshold}"
            )
    path = Path(args.source)
    try:
        source = path.read_text()
    except OSError as exc:
        print(f"repro: cannot read {path}: {exc}", file=sys.stderr)
        return 2

    registry = None
    if args.commuting_updates or args.barrier:
        from .transform.registry import default_registry

        registry = default_registry()
        if args.commuting_updates:
            registry = registry.with_effect("execute_update", "commuting_write")
        for method in args.barrier:
            registry.register_barrier(method)

    if args.analyze:
        report = analyze_source(source, application=path.name, registry=registry)
        print(report.details())
        return 0

    try:
        if args.prefetch:
            result = prefetch_source(
                source,
                registry=registry,
                reorder=not args.no_reorder,
                window=args.window,
                cache_size=args.cache_size,
                cache_ttl_s=args.cache_ttl,
                speculate=args.speculate,
                speculate_threshold=args.speculate_threshold,
                coalesce=args.coalesce,
                coalesce_window=args.coalesce_window,
                trace=args.trace,
                executor=args.executor,
            )
        else:
            result = asyncify_source(
                source,
                registry=registry,
                reorder=not args.no_reorder,
                window=args.window,
            )
    except (TransformError, SyntaxError) as exc:
        print(f"repro: transformation failed: {exc}", file=sys.stderr)
        return 1

    if args.output:
        try:
            Path(args.output).write_text(result.source + "\n")
        except OSError as exc:
            print(f"repro: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
    else:
        print(result.source)
    if args.report:
        print(result.summary(), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
