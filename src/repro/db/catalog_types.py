"""Shared catalog datatypes (split out to avoid import cycles)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .storage import HeapTable


@dataclass
class TableInfo:
    """Everything the engine knows about one table."""

    name: str
    heap: HeapTable
    indexes: List = field(default_factory=list)
