"""Latency model for the simulated database deployment.

The paper's measurements come from a client on a 100 Mbps LAN talking to
(a) a commercial server "SYS1" on a dual-core box and (b) PostgreSQL on a
two-Xeon box.  The performance effects the transformations exploit are:

* network round-trip per request (dominates warm-cache small queries),
* server-side concurrency (worker pool; more in-flight queries until the
  pool saturates — the "threads" plateau in Figures 9/10/13/15),
* disk seeks on a cold cache (reduced by elevator ordering and shared
  scans when queries are submitted concurrently — Figures 8/12/13).

A :class:`LatencyProfile` captures those knobs.  All times are seconds.
Profiles are scaled down from the paper's wall-clock scale so the whole
benchmark suite runs in minutes; the *relative* shape is preserved, which
is what EXPERIMENTS.md validates.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

#: Sleeps shorter than this are busy-waited; the OS timer would otherwise
#: round them up and distort small latencies.  The threshold must stay
#: *below* the latencies that carry the concurrency story (network RTT,
#: disk seeks): a busy-wait holds the GIL most of the time, so spinning
#: there would serialize the simulated overlap the transformations
#: create.  50us matches the kernel's default timer slack.
_SPIN_THRESHOLD_S = 0.00005


def precise_sleep(duration_s: float) -> None:
    """Sleep for ``duration_s`` with sub-millisecond precision.

    ``time.sleep`` on Linux has ~50-100us of slack; for the very short
    CPU-cost sleeps used by the executor we spin instead.  Both paths
    release the GIL (``time.sleep`` always; the spin loop calls
    ``time.perf_counter`` which releases it periodically), so simulated
    latencies overlap across threads just like real ones.
    """
    if duration_s <= 0:
        return
    if duration_s >= _SPIN_THRESHOLD_S:
        time.sleep(duration_s)
        return
    deadline = time.perf_counter() + duration_s
    while time.perf_counter() < deadline:
        pass


@dataclass(frozen=True)
class LatencyProfile:
    """Timing parameters of one simulated deployment.

    Attributes
    ----------
    name:
        Human-readable profile name (used in benchmark reports).
    network_rtt_s:
        Full client<->server round trip charged to every blocking call
        and to every asynchronous result fetch.
    send_overhead_s:
        Cost of handing a request to the async executor (the non-blocking
        ``submit_query`` path still pays this).
    cpu_fixed_s:
        Fixed per-statement server CPU cost (parse/plan/dispatch).
    cpu_per_row_s:
        Per-row predicate/projection evaluation cost.
    disk_seek_min_s / disk_seek_per_page_s / disk_seek_max_s:
        A random page read costs ``min(max, min + gap * per_page)``
        where ``gap`` is the head travel distance in pages — deep
        request queues served shortest-seek-first therefore genuinely
        reduce per-read cost (the elevator effect the paper cites).
    disk_sequential_s:
        Cost of reading the next sequential page (transfer only).
    disk_spindles:
        Number of independent heads the pages are striped over;
        concurrent queries drive several at once.
    thread_spawn_s:
        Client-side cost per async worker thread, charged when the
        pool first starts.  Reproduces the paper's observation that at
        small iteration counts "the overhead of thread creation and
        scheduling overshoots the query execution time".
    server_workers:
        Size of the server-side worker pool; concurrent submissions
        beyond this queue up, producing the thread-count plateau.
    buffer_pool_pages:
        Buffer pool capacity; a "cold cache" run clears it first.
    """

    name: str
    network_rtt_s: float
    send_overhead_s: float
    cpu_fixed_s: float
    cpu_per_row_s: float
    disk_seek_min_s: float
    disk_seek_per_page_s: float
    disk_seek_max_s: float
    disk_sequential_s: float
    disk_spindles: int
    server_workers: int
    buffer_pool_pages: int
    thread_spawn_s: float = 0.0

    def scaled(self, factor: float) -> "LatencyProfile":
        """Return a copy with all latencies multiplied by ``factor``.

        Worker and buffer counts are structural, not temporal, and are
        left unchanged.
        """
        return replace(
            self,
            name=f"{self.name}x{factor:g}",
            network_rtt_s=self.network_rtt_s * factor,
            send_overhead_s=self.send_overhead_s * factor,
            cpu_fixed_s=self.cpu_fixed_s * factor,
            cpu_per_row_s=self.cpu_per_row_s * factor,
            disk_seek_min_s=self.disk_seek_min_s * factor,
            disk_seek_per_page_s=self.disk_seek_per_page_s * factor,
            disk_seek_max_s=self.disk_seek_max_s * factor,
            disk_sequential_s=self.disk_sequential_s * factor,
            thread_spawn_s=self.thread_spawn_s * factor,
        )


#: Commercial server profile ("SYS1" in the paper): higher per-request
#: fixed costs, a deep worker pool, fast disks.
SYS1 = LatencyProfile(
    name="SYS1",
    network_rtt_s=400e-6,
    send_overhead_s=8e-6,
    cpu_fixed_s=40e-6,
    cpu_per_row_s=0.12e-6,
    disk_seek_min_s=150e-6,
    disk_seek_per_page_s=2e-6,
    disk_seek_max_s=1000e-6,
    disk_sequential_s=30e-6,
    disk_spindles=4,
    server_workers=16,
    buffer_pool_pages=4096,
    thread_spawn_s=250e-6,
)

#: PostgreSQL profile: slightly cheaper round trips (the paper's PG box
#: showed lower absolute times), smaller effective worker pool.
POSTGRES = LatencyProfile(
    name="PostgreSQL",
    network_rtt_s=300e-6,
    send_overhead_s=8e-6,
    cpu_fixed_s=30e-6,
    cpu_per_row_s=0.10e-6,
    disk_seek_min_s=150e-6,
    disk_seek_per_page_s=2e-6,
    disk_seek_max_s=900e-6,
    disk_sequential_s=30e-6,
    disk_spindles=3,
    server_workers=12,
    buffer_pool_pages=4096,
    thread_spawn_s=250e-6,
)

#: Zero-latency profile for unit tests: semantics only, no sleeps.
INSTANT = LatencyProfile(
    name="instant",
    network_rtt_s=0.0,
    send_overhead_s=0.0,
    cpu_fixed_s=0.0,
    cpu_per_row_s=0.0,
    disk_seek_min_s=0.0,
    disk_seek_per_page_s=0.0,
    disk_seek_max_s=0.0,
    disk_sequential_s=0.0,
    disk_spindles=2,
    server_workers=8,
    buffer_pool_pages=256,
)

PROFILES = {profile.name: profile for profile in (SYS1, POSTGRES, INSTANT)}


class LatencyMeter:
    """Thread-safe accumulator of simulated latency charged, by category.

    The benchmark harness reads these counters to explain *where* time
    went (network vs disk vs CPU) in EXPERIMENTS.md.
    """

    CATEGORIES = ("network", "disk", "cpu", "queue")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._totals = {category: 0.0 for category in self.CATEGORIES}
        self._counts = {category: 0 for category in self.CATEGORIES}

    def charge(self, category: str, duration_s: float) -> None:
        """Sleep for ``duration_s`` and record it under ``category``."""
        if duration_s > 0:
            precise_sleep(duration_s)
        with self._lock:
            self._totals[category] += duration_s
            self._counts[category] += 1

    def record(self, category: str, duration_s: float) -> None:
        """Record time that was already spent (no additional sleep)."""
        with self._lock:
            self._totals[category] += duration_s
            self._counts[category] += 1

    def totals(self) -> dict:
        with self._lock:
            return dict(self._totals)

    def counts(self) -> dict:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            for category in self.CATEGORIES:
                self._totals[category] = 0.0
                self._counts[category] = 0
