"""System catalog: tables, their indexes and their IO extents."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .catalog_types import TableInfo
from .disk import SimulatedDisk
from .errors import CatalogError, UnknownTableError
from .index import HashIndex, OrderedIndex
from .storage import DEFAULT_ROWS_PER_PAGE, HeapTable
from .types import Schema

Index = Union[HashIndex, OrderedIndex]


class Catalog:
    """Name -> table registry with index maintenance hooks."""

    def __init__(self, disk: SimulatedDisk) -> None:
        self._disk = disk
        self._lock = threading.Lock()
        self._tables: Dict[str, TableInfo] = {}

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        clustered_on: Optional[str] = None,
        if_not_exists: bool = False,
    ) -> TableInfo:
        with self._lock:
            if name in self._tables:
                if if_not_exists:
                    return self._tables[name]
                raise CatalogError(f"table {name!r} already exists")
            heap = HeapTable(name, schema, rows_per_page, clustered_on)
            info = TableInfo(name=name, heap=heap)
            self._tables[name] = info
        self._disk.allocate_extent(name, pages=16)
        return info

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        with self._lock:
            if name not in self._tables:
                if if_exists:
                    return
                raise UnknownTableError(name)
            del self._tables[name]

    def create_index(
        self,
        index_name: str,
        table_name: str,
        column: str,
        ordered: bool = False,
        unique: bool = False,
    ) -> Index:
        info = self.table(table_name)
        with self._lock:
            if any(index.name == index_name for index in info.indexes):
                raise CatalogError(f"index {index_name!r} already exists")
            if ordered:
                index: Index = OrderedIndex(index_name, info.heap, column)
            else:
                index = HashIndex(index_name, info.heap, column, unique=unique)
            index.build()
            info.indexes.append(index)
        self._disk.allocate_extent(index.io_name, pages=max(1, index.page_count))
        return index

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> TableInfo:
        with self._lock:
            try:
                return self._tables[name]
            except KeyError:
                raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name in self._tables

    def table_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tables)

    def indexes_on(self, table_name: str, column: Optional[str] = None) -> List[Index]:
        info = self.table(table_name)
        if column is None:
            return list(info.indexes)
        return [index for index in info.indexes if index.column == column]

    # ------------------------------------------------------------------
    # index maintenance (called by DML operators)
    # ------------------------------------------------------------------
    def on_insert(self, table_name: str, row_id: int, row) -> None:
        info = self.table(table_name)
        for index in info.indexes:
            position = info.heap.schema.position(index.column, table_name)
            index.add(row_id, row[position])
        self._disk.grow_extent(table_name, info.heap.page_count)

    def on_delete(self, table_name: str, row_id: int, row) -> None:
        info = self.table(table_name)
        for index in info.indexes:
            position = info.heap.schema.position(index.column, table_name)
            index.remove(row_id, row[position])

    def on_update(self, table_name: str, row_id: int, old_row, new_row) -> None:
        info = self.table(table_name)
        for index in info.indexes:
            position = info.heap.schema.position(index.column, table_name)
            if old_row[position] != new_row[position]:
                index.remove(row_id, old_row[position])
                index.add(row_id, new_row[position])
