"""The binding-demultiplex operator: one pass answers N binding sets.

The set-oriented server path (``DatabaseServer.submit_prepared_batch``)
evaluates one prepared SELECT over many binding sets in a *single*
statement execution: one lock acquisition, one fixed per-statement CPU
charge, and — for plans without a usable index — one shared table scan
whose rows are bucketed by the equality column's value and demultiplexed
to the bindings that match.  Indexed plans keep their access path but
probe it once per *distinct* binding set, so a skewed batch (the hotset
workload's bread and butter) collapses duplicates for free.

This is the server half of the batching-vs-async hybrid: the paper
contrasts asynchronous submission with batching (Guravannavar &
Sudarshan, VLDB 2008); the demux operator is what makes a batch an
actual set-oriented evaluation rather than N statements in a trenchcoat.

Fault isolation is per binding: a binding whose parameters are malformed
(wrong arity, an expression that fails to evaluate) yields an exception
*outcome* in its slot; the other bindings complete normally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import ParamCountError
from ..sql.ast_nodes import BinaryOp, Expr, Param, SelectStmt
from .context import ExecutionContext
from .expr_eval import RowEvaluator
from .operators import RowIdRow, SeqScanOp
from .planner import SelectPlan, _conjuncts, _equality_on_column
from .result import QueryResult

#: Per-binding result slot: the binding's :class:`QueryResult`, or the
#: exception that binding (and only that binding) raised.
BindingOutcome = Union[QueryResult, Exception]


def demuxable(plan) -> bool:
    """May ``plan`` be evaluated set-oriented over many binding sets?

    True exactly for SELECT plans: reads have no per-binding side
    effects, so one pass can serve all of them.  Writes and DDL fall
    back to per-binding execution (each keeps its own invalidation
    broadcast and undo accounting).
    """
    return isinstance(plan, SelectPlan)


def _contains_param(expr: Expr) -> bool:
    if isinstance(expr, Param):
        return True
    if isinstance(expr, BinaryOp):
        return _contains_param(expr.left) or _contains_param(expr.right)
    return False


def _bucket_predicate(stmt: SelectStmt, info) -> Optional[Tuple[int, Expr]]:
    """The conjunct rows are bucketed on: the first ``col = expr``
    equality whose constant side carries a parameter.  Returns the
    column's row position and the value expression, or None when no
    such conjunct exists (bindings then share the full scan and each
    applies the whole WHERE clause itself)."""
    for conjunct in _conjuncts(stmt.where):
        match = _equality_on_column(conjunct)
        if match is None:
            continue
        column, value_expr = match
        if not _contains_param(value_expr):
            continue
        return info.heap.schema.position(column, info.name), value_expr
    return None


def execute_batch_select(
    plan: SelectPlan, ctx: ExecutionContext, bindings: List[tuple]
) -> List[BindingOutcome]:
    """Evaluate ``plan`` once over every binding set in ``bindings``.

    The caller (the server's batch path) owns statement-level stats and
    the CPU flush; this function owns the single lock acquisition, the
    single access pass, and per-binding fault isolation.  Outcomes come
    back in binding order.
    """
    stmt = plan._stmt
    info = plan._info
    outcomes: List[Optional[BindingOutcome]] = [None] * len(bindings)

    pending: List[int] = []
    for index, binding in enumerate(bindings):
        if stmt.param_count != len(binding):
            outcomes[index] = ParamCountError(stmt.param_count, len(binding))
        else:
            pending.append(index)
    if not pending:
        return outcomes  # every binding faulted before touching the table

    # Distinct-binding dedupe: identical binding sets share one
    # evaluation (and one result object, exactly as a cache hit would).
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    loose: List[int] = []  # unhashable bindings: no dedupe possible
    for index in pending:
        binding = tuple(bindings[index])
        try:
            bucket = groups.get(binding)
        except TypeError:
            loose.append(index)
            continue
        if bucket is None:
            groups[binding] = [index]
            order.append(binding)
        else:
            bucket.append(index)

    ctx.charge_cpu(fixed=True)  # ONE per-statement fixed cost for the batch
    single_scan = isinstance(plan._access, SeqScanOp)

    with info.heap.lock.reading():  # ONE lock acquisition for the batch
        scanned: Optional[List[RowIdRow]] = None
        buckets: Optional[Dict[object, List[RowIdRow]]] = None
        value_expr: Optional[Expr] = None
        if single_scan:
            scanned = plan._access.run(ctx)  # the single shared scan
            predicate = _bucket_predicate(stmt, info)
            if predicate is not None:
                position, value_expr = predicate
                buckets = {}
                for row_id, row in scanned:
                    buckets.setdefault(row[position], []).append((row_id, row))
                ctx.charge_cpu(rows=len(scanned))

        def run_one(binding: tuple) -> BindingOutcome:
            sub = ctx.derive(binding)
            try:
                if not single_scan:
                    # Indexed plan: keep the access path, probe once per
                    # distinct binding (duplicates were deduped above).
                    rows = plan._access.run(sub)
                elif buckets is not None:
                    evaluator = RowEvaluator(
                        info.heap.schema, info.name, binding
                    )
                    key = evaluator.evaluate(value_expr, ())
                    try:
                        rows = buckets.get(key, [])
                    except TypeError:
                        # Unhashable key (e.g. a list parameter): this
                        # binding cannot use the bucket index, but the
                        # full WHERE clause re-applies below, so the
                        # whole scan is a correct candidate set.
                        rows = scanned
                else:
                    rows = scanned
                return plan._finalize(sub, rows)
            except Exception as exc:  # isolate the fault to this binding
                return exc
            finally:
                ctx.absorb_cpu(sub)

        for binding in order:
            outcome = run_one(binding)
            for index in groups[binding]:
                outcomes[index] = outcome
        for index in loose:
            outcomes[index] = run_one(tuple(bindings[index]))
    return outcomes
