"""The binding-demultiplex operator: one pass answers N binding sets.

The set-oriented server path (``DatabaseServer.submit_prepared_batch``)
evaluates one prepared SELECT over many binding sets in a *single*
statement execution: one lock acquisition, one fixed per-statement CPU
charge, and — for plans without a usable index — one shared table scan
whose rows are bucketed by the equality column's value and demultiplexed
to the bindings that match.  Indexed plans keep their access path but
probe it once per *distinct* binding set, so a skewed batch (the hotset
workload's bread and butter) collapses duplicates for free.

This is the server half of the batching-vs-async hybrid: the paper
contrasts asynchronous submission with batching (Guravannavar &
Sudarshan, VLDB 2008); the demux operator is what makes a batch an
actual set-oriented evaluation rather than N statements in a trenchcoat.

Fault isolation is per binding: a binding whose parameters are malformed
(wrong arity, an expression that fails to evaluate) yields an exception
*outcome* in its slot; the other bindings complete normally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import ParamCountError
from ..sql.ast_nodes import BinaryOp, Expr, Param, SelectStmt
from .context import ExecutionContext
from .expr_eval import RowEvaluator
from .operators import RowIdRow, SeqScanOp
from .planner import SelectPlan, _conjuncts, _equality_on_column, prefer_batch_scan
from .result import QueryResult

#: Per-binding result slot: the binding's :class:`QueryResult`, or the
#: exception that binding (and only that binding) raised.
BindingOutcome = Union[QueryResult, Exception]


def demuxable(plan) -> bool:
    """May ``plan`` be evaluated set-oriented over many binding sets?

    True exactly for SELECT plans: reads have no per-binding side
    effects, so one pass can serve all of them.  Writes and DDL fall
    back to per-binding execution (each keeps its own invalidation
    broadcast and undo accounting).
    """
    return isinstance(plan, SelectPlan)


def _contains_param(expr: Expr) -> bool:
    if isinstance(expr, Param):
        return True
    if isinstance(expr, BinaryOp):
        return _contains_param(expr.left) or _contains_param(expr.right)
    return False


def _bucket_predicate(stmt: SelectStmt, info) -> Optional[Tuple[int, Expr]]:
    """The conjunct rows are bucketed on: the first ``col = expr``
    equality whose constant side carries a parameter.  Returns the
    column's row position and the value expression, or None when no
    such conjunct exists (bindings then share the full scan and each
    applies the whole WHERE clause itself)."""
    for conjunct in _conjuncts(stmt.where):
        match = _equality_on_column(conjunct)
        if match is None:
            continue
        column, value_expr = match
        if not _contains_param(value_expr):
            continue
        return info.heap.schema.position(column, info.name), value_expr
    return None


def execute_batch_select(
    plan: SelectPlan,
    ctx: ExecutionContext,
    bindings: List[tuple],
    span=None,
) -> List[BindingOutcome]:
    """Evaluate ``plan`` once over every binding set in ``bindings``.

    The caller (the server's batch path) owns statement-level stats and
    the CPU flush; this function owns the single lock acquisition, the
    access strategy, and per-binding fault isolation.  Outcomes come
    back in binding order.

    The access strategy is *cost-gated* per batch: an indexed plan still
    prefers one shared scan when distinct-bindings × probe cost exceeds
    the scan cost (a batch covering most of the key space re-reads the
    table through the index anyway, without the sequential IO).  The
    chosen strategy lands on ``span`` as the ``strategy`` attribute.
    """
    stmt = plan._stmt
    info = plan._info
    outcomes: List[Optional[BindingOutcome]] = [None] * len(bindings)

    pending: List[int] = []
    for index, binding in enumerate(bindings):
        if stmt.param_count != len(binding):
            outcomes[index] = ParamCountError(stmt.param_count, len(binding))
        else:
            pending.append(index)
    if not pending:
        return outcomes  # every binding faulted before touching the table

    # Distinct-binding dedupe: identical binding sets share one
    # evaluation (and one result object, exactly as a cache hit would).
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    loose: List[int] = []  # unhashable bindings: no dedupe possible
    for index in pending:
        binding = tuple(bindings[index])
        try:
            bucket = groups.get(binding)
        except TypeError:
            loose.append(index)
            continue
        if bucket is None:
            groups[binding] = [index]
            order.append(binding)
        else:
            bucket.append(index)

    ctx.charge_cpu(fixed=True)  # ONE per-statement fixed cost for the batch
    columnar = ctx.executor == "columnar"
    distinct = len(order) + len(loose)
    single_scan = prefer_batch_scan(info, plan._access, distinct, ctx.profile)
    scan_op = (
        plan._access
        if isinstance(plan._access, SeqScanOp)
        else SeqScanOp(info)
    )
    if span is not None:
        span.set("strategy", "scan" if single_scan else "probe")
        span.set("executor", ctx.executor)

    with info.heap.lock.reading():  # ONE lock acquisition for the batch
        scanned: Optional[List[RowIdRow]] = None
        scanned_sel: Optional[List[int]] = None
        table_columns = None
        buckets: Optional[Dict[object, list]] = None
        value_expr: Optional[Expr] = None
        if single_scan:
            predicate = _bucket_predicate(stmt, info)
            if columnar:
                # The single shared scan, batch-at-a-time: bucket by
                # partitioning each batch's selection vector on the
                # equality column — no tuples are built.
                table_columns = info.heap.columns_view()
                key_column = (
                    table_columns[predicate[0]] if predicate is not None else None
                )
                if predicate is not None:
                    value_expr = predicate[1]
                    buckets = {}
                scanned_sel = []
                for batch in scan_op.run_columnar(ctx):
                    ctx.note_scan_batch(len(batch.sel), len(batch.sel))
                    scanned_sel.extend(batch.sel)
                    if buckets is not None:
                        for rid in batch.sel:
                            buckets.setdefault(key_column[rid], []).append(rid)
                if buckets is not None:
                    ctx.charge_cpu(rows=len(scanned_sel))
            else:
                scanned = scan_op.run(ctx)
                if predicate is not None:
                    position, value_expr = predicate
                    buckets = {}
                    for row_id, row in scanned:
                        buckets.setdefault(row[position], []).append(
                            (row_id, row)
                        )
                    ctx.charge_cpu(rows=len(scanned))

        def run_one(binding: tuple) -> BindingOutcome:
            sub = ctx.derive(binding)
            try:
                if columnar:
                    return _run_one_columnar(plan, sub, binding)
                if not single_scan:
                    # Indexed plan: keep the access path, probe once per
                    # distinct binding (duplicates were deduped above).
                    rows = plan._access.run(sub)
                elif buckets is not None:
                    evaluator = RowEvaluator(
                        info.heap.schema, info.name, binding
                    )
                    key = evaluator.evaluate(value_expr, ())
                    try:
                        rows = buckets.get(key, [])
                    except TypeError:
                        # Unhashable key (e.g. a list parameter): this
                        # binding cannot use the bucket index, but the
                        # full WHERE clause re-applies below, so the
                        # whole scan is a correct candidate set.
                        rows = scanned
                else:
                    rows = scanned
                return plan._finalize(sub, rows)
            except Exception as exc:  # isolate the fault to this binding
                return exc
            finally:
                ctx.absorb_cpu(sub)

        def _run_one_columnar(
            plan: SelectPlan, sub: ExecutionContext, binding: tuple
        ) -> BindingOutcome:
            if not single_scan:
                sel: List[int] = []
                columns = info.heap.columns_view()
                for batch in plan._access.run_columnar(sub):
                    sub.note_scan_batch(len(batch.sel), len(batch.sel))
                    sel.extend(batch.sel)
            elif buckets is not None:
                evaluator = RowEvaluator(info.heap.schema, info.name, binding)
                key = evaluator.evaluate(value_expr, ())
                columns = table_columns
                try:
                    sel = buckets.get(key, [])
                except TypeError:
                    sel = scanned_sel  # unhashable key: WHERE re-applies
            else:
                columns = table_columns
                sel = scanned_sel
            # The bucket (or scan) holds candidates, not matches: the
            # full WHERE clause re-applies per binding, vectorized.
            return plan._finalize_columnar(sub, sel, columns, apply_where=True)

        for binding in order:
            outcome = run_one(binding)
            for index in groups[binding]:
                outcomes[index] = outcome
        for index in loose:
            outcomes[index] = run_one(tuple(bindings[index]))
    return outcomes
