"""The planner: statement AST -> executable plan.

Access-path selection, in priority order for an equality predicate on a
WHERE conjunct:

1. clustering column of the table  -> contiguous heap range
2. hash index on the column        -> bucket probe + heap fetch
3. ordered index (range conjuncts) -> index range + heap fetch
4. otherwise                       -> shared sequential scan

The non-matched conjuncts (and, harmlessly, the matched one) are
re-applied as a residual filter, so planning is purely a cost decision —
never a correctness one.  Property tests exploit that: every query must
return identical rows with indexes present or absent.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

from ..catalog import Catalog
from ..catalog_types import TableInfo
from ..errors import ParamCountError, PlanError
from ..index import HashIndex, OrderedIndex
from ..sql.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    Expr,
    InsertStmt,
    Literal,
    LogicalOp,
    Param,
    SelectStmt,
    Statement,
    UpdateStmt,
)
from ..types import Column, ColumnType, Schema
from .context import ExecutionContext
from .expr_eval import ColumnarEvaluator, RowEvaluator
from .operators import (
    ClusteredEqOp,
    HashEqOp,
    OrderedRangeOp,
    SeqScanOp,
    aggregate,
    aggregate_grouped,
    apply_filter,
    apply_limit,
    apply_order,
    columnar_aggregate,
    columnar_aggregate_grouped,
    columnar_limit,
    columnar_order,
    columnar_project,
    order_output_rows,
    project,
)


def _limit_output(ctx: ExecutionContext, info, rows, limit):
    """LIMIT over already-projected output rows."""
    if limit is None:
        return rows
    evaluator = RowEvaluator(info.heap.schema, info.name, ctx.params)
    count = evaluator.evaluate(limit, ())
    if not isinstance(count, int) or count < 0:
        raise PlanError(f"LIMIT must be a non-negative integer, got {count!r}")
    return rows[:count]
from .result import QueryResult


class Planner:
    """Stateless planner over one catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def plan(self, statement: Statement):
        if isinstance(statement, SelectStmt):
            return SelectPlan(self._catalog, statement)
        if isinstance(statement, InsertStmt):
            return InsertPlan(self._catalog, statement)
        if isinstance(statement, UpdateStmt):
            return UpdatePlan(self._catalog, statement)
        if isinstance(statement, DeleteStmt):
            return DeletePlan(self._catalog, statement)
        if isinstance(statement, CreateTableStmt):
            return CreateTablePlan(self._catalog, statement)
        if isinstance(statement, CreateIndexStmt):
            return CreateIndexPlan(self._catalog, statement)
        raise PlanError(f"cannot plan statement: {statement!r}")


# ----------------------------------------------------------------------
# helpers shared by SELECT/UPDATE/DELETE
# ----------------------------------------------------------------------


def _conjuncts(where: Optional[Expr]) -> List[Expr]:
    """Flatten top-level AND into a conjunct list."""
    if where is None:
        return []
    if isinstance(where, LogicalOp) and where.op == "and":
        return _conjuncts(where.left) + _conjuncts(where.right)
    return [where]


def _constant_side(expr: Expr) -> bool:
    """True when ``expr`` contains no column references."""
    if isinstance(expr, (Literal, Param)):
        return True
    if isinstance(expr, BinaryOp):
        return _constant_side(expr.left) and _constant_side(expr.right)
    return False


def _equality_on_column(conjunct: Expr) -> Optional[Tuple[str, Expr]]:
    """Match ``col = const`` or ``const = col``; return (column, value)."""
    if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ColumnRef) and _constant_side(right):
        return left.name, right
    if isinstance(right, ColumnRef) and _constant_side(left):
        return right.name, left
    return None


def _range_on_column(conjunct: Expr) -> Optional[Tuple[str, Optional[Expr], Optional[Expr], bool, bool]]:
    """Match range conjuncts; return (col, low, high, low_incl, high_incl)."""
    if isinstance(conjunct, Between) and not conjunct.negated:
        if isinstance(conjunct.operand, ColumnRef):
            if _constant_side(conjunct.low) and _constant_side(conjunct.high):
                return conjunct.operand.name, conjunct.low, conjunct.high, True, True
        return None
    if not isinstance(conjunct, BinaryOp) or conjunct.op not in ("<", "<=", ">", ">="):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ColumnRef) and _constant_side(right):
        column, value, op = left.name, right, conjunct.op
    elif isinstance(right, ColumnRef) and _constant_side(left):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        column, value, op = right.name, left, flipped[conjunct.op]
    else:
        return None
    if op == "<":
        return column, None, value, True, False
    if op == "<=":
        return column, None, value, True, True
    if op == ">":
        return column, value, None, False, True
    return column, value, None, True, True


def _choose_access_path(info: TableInfo, indexes, where: Optional[Expr]):
    conjuncts = _conjuncts(where)
    for conjunct in conjuncts:
        match = _equality_on_column(conjunct)
        if match is None:
            continue
        column, value = match
        if info.heap.clustered_on == column:
            return ClusteredEqOp(info, value)
        for index in indexes:
            if index.column == column and isinstance(index, HashIndex):
                return HashEqOp(info, index, value)
        for index in indexes:
            if index.column == column and isinstance(index, OrderedIndex):
                return OrderedRangeOp(info, index, value, value)
    for conjunct in conjuncts:
        match = _range_on_column(conjunct)
        if match is None:
            continue
        column, low, high, low_inclusive, high_inclusive = match
        for index in indexes:
            if index.column == column and isinstance(index, OrderedIndex):
                return OrderedRangeOp(info, index, low, high, low_inclusive, high_inclusive)
    return SeqScanOp(info)


def _check_params(expected: int, params: Sequence) -> None:
    if expected != len(params):
        raise ParamCountError(expected, len(params))


def _columnar_candidates(ctx: ExecutionContext, info: TableInfo, access, where):
    """Run an access path batch-at-a-time and filter each batch.

    Returns ``(sel, columns, evaluator)``: the surviving selection
    vector (in the access path's order), the table's column lists, and
    the statement's columnar evaluator for downstream operators.  Each
    batch is recorded on the context for the scan metrics.
    """
    heap = info.heap
    columns = heap.columns_view()
    evaluator = ColumnarEvaluator(heap.schema, info.name, ctx.params, columns)
    sel: List[int] = []
    for batch in access.run_columnar(ctx):
        kept = evaluator.filter(where, batch.sel)
        if where is not None:
            ctx.charge_cpu(rows=len(batch.sel))
        ctx.note_scan_batch(len(batch.sel), len(kept))
        sel.extend(kept)
    return sel, columns, evaluator


def prefer_batch_scan(
    info: TableInfo, access, distinct_bindings: int, profile
) -> bool:
    """Cost gate for a demuxed batch: is ONE shared scan cheaper than
    one index probe per distinct binding?

    Scan cost: every heap page sequentially plus per-row CPU.  Probe
    cost: the index page plus the expected heap pages of one key's rows
    (random IO) plus their CPU.  Estimates use cold-cache disk costs —
    the gate needs the right order of magnitude, not exact latency.
    Clustered probes touch one contiguous run, so they always win.
    """
    if isinstance(access, SeqScanOp):
        return True
    index = getattr(access, "_index", None)
    if index is None:  # ClusteredEqOp: probes are near-free page runs
        return False
    heap = info.heap
    rows = heap.row_count
    pages = heap.page_count
    scan_cost = pages * profile.disk_sequential_s + rows * profile.cpu_per_row_s
    rows_per_key = rows / max(1, index.key_count)
    probe_pages = 1 + min(rows_per_key, float(pages))
    probe_cost = (
        probe_pages * profile.disk_seek_min_s
        + rows_per_key * profile.cpu_per_row_s
    )
    return distinct_bindings * probe_cost > scan_cost


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------


class SelectPlan:
    def __init__(self, catalog: Catalog, stmt: SelectStmt) -> None:
        self._catalog = catalog
        self._stmt = stmt
        self._info = catalog.table(stmt.table)
        indexes = catalog.indexes_on(stmt.table)
        self._access = _choose_access_path(self._info, indexes, stmt.where)

    @property
    def access_path(self) -> str:
        """Name of the chosen access path (asserted by planner tests)."""
        return type(self._access).__name__

    def execute(self, ctx: ExecutionContext) -> QueryResult:
        _check_params(self._stmt.param_count, ctx.params)
        ctx.charge_cpu(fixed=True)
        info = self._info
        with info.heap.lock.reading():
            if ctx.executor == "columnar":
                sel, columns, evaluator = _columnar_candidates(
                    ctx, info, self._access, self._stmt.where
                )
                return self._finalize_columnar(ctx, sel, columns, evaluator)
            rows = self._access.run(ctx)
            return self._finalize(ctx, rows)

    def _finalize(self, ctx: ExecutionContext, rows) -> QueryResult:
        """Everything after the access path: filter, aggregate/group,
        order, limit, project.  Runs under the heap's read lock.  Also
        the per-binding tail of the batch-demux operator
        (:mod:`repro.db.plan.demux`), which runs the access once and
        finalizes each binding set on its own parameter context.
        """
        stmt = self._stmt
        info = self._info
        rows = apply_filter(ctx, info, rows, stmt.where)
        if stmt.group_by:
            columns, output = aggregate_grouped(
                ctx, info, rows, stmt.items, stmt.group_by
            )
            output = order_output_rows(columns, output, stmt.order_by)
            output = _limit_output(ctx, info, output, stmt.limit)
            return QueryResult(columns=columns, rows=output)
        if stmt.is_aggregate:
            columns, output = aggregate(ctx, info, rows, stmt.items)
            return QueryResult(columns=columns, rows=output)
        rows = apply_order(info, rows, stmt.order_by)
        rows = apply_limit(ctx, info, rows, stmt.limit)
        columns, output = project(ctx, info, rows, stmt.items, stmt.distinct)
        return QueryResult(columns=columns, rows=output)

    def _finalize_columnar(
        self,
        ctx: ExecutionContext,
        sel,
        columns,
        evaluator: Optional[ColumnarEvaluator] = None,
        apply_where: bool = False,
    ) -> QueryResult:
        """The vectorized :meth:`_finalize`: operators narrow/reorder the
        selection vector; tuples materialize only in
        :meth:`QueryResult.from_columns`.  ``apply_where=True`` re-runs
        the full WHERE over ``sel`` (the batch-demux operator hands
        bucket candidates, not filtered rows)."""
        stmt = self._stmt
        info = self._info
        if evaluator is None:
            evaluator = ColumnarEvaluator(
                info.heap.schema, info.name, ctx.params, columns
            )
        if apply_where and stmt.where is not None:
            ctx.charge_cpu(rows=len(sel))
            sel = evaluator.filter(stmt.where, sel)
        if stmt.group_by:
            names, output = columnar_aggregate_grouped(
                ctx, info, evaluator, columns, sel, stmt.items, stmt.group_by
            )
            output = order_output_rows(names, output, stmt.order_by)
            output = _limit_output(ctx, info, output, stmt.limit)
            return QueryResult(columns=names, rows=output)
        if stmt.is_aggregate:
            names, output = columnar_aggregate(ctx, evaluator, sel, stmt.items)
            return QueryResult(columns=names, rows=output)
        sel = columnar_order(info, columns, sel, stmt.order_by)
        sel = columnar_limit(ctx, info, sel, stmt.limit)
        names, value_columns = columnar_project(
            ctx, info, evaluator, columns, sel, stmt.items
        )
        return QueryResult.from_columns(names, value_columns, distinct=stmt.distinct)


class InsertPlan:
    def __init__(self, catalog: Catalog, stmt: InsertStmt) -> None:
        self._catalog = catalog
        self._stmt = stmt
        self._info = catalog.table(stmt.table)
        schema = self._info.heap.schema
        if stmt.columns:
            self._positions = schema.project_positions(stmt.columns, stmt.table)
            if len(stmt.values) != len(stmt.columns):
                raise PlanError("INSERT column/value count mismatch")
        else:
            self._positions = tuple(range(len(schema)))
            if len(stmt.values) != len(schema):
                raise PlanError("INSERT value count does not match schema")

    def execute(self, ctx: ExecutionContext) -> QueryResult:
        _check_params(self._stmt.param_count, ctx.params)
        ctx.charge_cpu(fixed=True)
        info = self._info
        schema = info.heap.schema
        evaluator = RowEvaluator(schema, info.name, ctx.params)
        values: List = [None] * len(schema)
        for position, expr in zip(self._positions, self._stmt.values):
            values[position] = evaluator.evaluate(expr, ())
        if ctx.txn is not None and info.heap.is_clustered:
            from ..errors import TransactionStateError

            raise TransactionStateError(
                f"transactional INSERT into clustered table {info.name!r} is "
                "not supported: clustered inserts shift row ids, which the "
                "logical undo log cannot reverse"
            )
        with info.heap.lock.writing():
            row = schema.coerce_row(values)
            row_id = info.heap.insert(row)
            self._catalog.on_insert(info.name, row_id, row)
            ctx.record_insert(info.name, row_id, row)
            page_no = info.heap.page_of(row_id)
            # Charge one sequential page write when a page fills up; the
            # buffer absorbs the rest (write-back cache).
            if row_id % info.heap.rows_per_page == 0:
                ctx.meter.charge("disk", ctx.profile.disk_sequential_s)
            ctx.buffer.install(info.name, page_no)
        return QueryResult(rowcount=1)


class UpdatePlan:
    def __init__(self, catalog: Catalog, stmt: UpdateStmt) -> None:
        self._catalog = catalog
        self._stmt = stmt
        self._info = catalog.table(stmt.table)
        indexes = catalog.indexes_on(stmt.table)
        self._access = _choose_access_path(self._info, indexes, stmt.where)
        schema = self._info.heap.schema
        self._targets = [
            (schema.position(column, stmt.table), expr)
            for column, expr in stmt.assignments
        ]

    def execute(self, ctx: ExecutionContext) -> QueryResult:
        _check_params(self._stmt.param_count, ctx.params)
        ctx.charge_cpu(fixed=True)
        info = self._info
        evaluator = RowEvaluator(info.heap.schema, info.name, ctx.params)
        with info.heap.lock.writing():
            rows = self._candidate_rows(ctx)
            for row_id, row in rows:
                new_row = list(row)
                for position, expr in self._targets:
                    new_row[position] = evaluator.evaluate(expr, row)
                coerced = info.heap.schema.coerce_row(new_row)
                info.heap.update(row_id, coerced)
                self._catalog.on_update(info.name, row_id, row, coerced)
                ctx.record_update(info.name, row_id, row, coerced)
            ctx.charge_cpu(rows=len(rows))
        return QueryResult(rowcount=len(rows))

    def _candidate_rows(self, ctx: ExecutionContext):
        """Matching ``(row_id, old_row)`` pairs, via the vectorized
        filter when the columnar executor runs the statement.  The
        mutation itself needs the old tuples (undo log and index
        maintenance), so they materialize here either way."""
        info = self._info
        if ctx.executor == "columnar":
            sel, _columns, _evaluator = _columnar_candidates(
                ctx, info, self._access, self._stmt.where
            )
            return [(row_id, info.heap.fetch(row_id)) for row_id in sel]
        rows = self._access.run(ctx)
        return apply_filter(ctx, info, rows, self._stmt.where)


class DeletePlan:
    def __init__(self, catalog: Catalog, stmt: DeleteStmt) -> None:
        self._catalog = catalog
        self._stmt = stmt
        self._info = catalog.table(stmt.table)
        indexes = catalog.indexes_on(stmt.table)
        self._access = _choose_access_path(self._info, indexes, stmt.where)

    def execute(self, ctx: ExecutionContext) -> QueryResult:
        _check_params(self._stmt.param_count, ctx.params)
        ctx.charge_cpu(fixed=True)
        info = self._info
        with info.heap.lock.writing():
            if ctx.executor == "columnar":
                sel, _columns, _evaluator = _columnar_candidates(
                    ctx, info, self._access, self._stmt.where
                )
                rows = [(row_id, info.heap.fetch(row_id)) for row_id in sel]
            else:
                rows = self._access.run(ctx)
                rows = apply_filter(ctx, info, rows, self._stmt.where)
            for row_id, row in rows:
                info.heap.delete(row_id)
                self._catalog.on_delete(info.name, row_id, row)
                ctx.record_delete(info.name, row_id, row)
            ctx.charge_cpu(rows=len(rows))
        return QueryResult(rowcount=len(rows))


class CreateTablePlan:
    def __init__(self, catalog: Catalog, stmt: CreateTableStmt) -> None:
        self._catalog = catalog
        self._stmt = stmt

    def execute(self, ctx: ExecutionContext) -> QueryResult:
        columns = [
            Column(
                definition.name,
                ColumnType.from_name(definition.type_name),
                nullable=not definition.not_null,
            )
            for definition in self._stmt.columns
        ]
        self._catalog.create_table(
            self._stmt.table,
            Schema(columns),
            if_not_exists=self._stmt.if_not_exists,
        )
        return QueryResult(rowcount=0)


class CreateIndexPlan:
    def __init__(self, catalog: Catalog, stmt: CreateIndexStmt) -> None:
        self._catalog = catalog
        self._stmt = stmt

    def execute(self, ctx: ExecutionContext) -> QueryResult:
        stmt = self._stmt
        if stmt.clustered:
            raise PlanError(
                "clustering is declared at CREATE TABLE time via the "
                "Database.create_table(clustered_on=...) API"
            )
        self._catalog.create_index(
            stmt.index,
            stmt.table,
            stmt.column,
            ordered=stmt.ordered,
            unique=stmt.unique,
        )
        return QueryResult(rowcount=0)
