"""Result container returned to clients."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple


@dataclass
class QueryResult:
    """Rows plus column names; also used for DML (rowcount only).

    Behaves like a sequence of row tuples so workload code can write
    ``rows[0][0]`` or iterate directly, mirroring a JDBC ResultSet
    drained into a list.
    """

    columns: Tuple[str, ...] = ()
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0

    def __post_init__(self) -> None:
        if self.rows and not self.rowcount:
            self.rowcount = len(self.rows)

    @classmethod
    def from_columns(
        cls,
        columns: Tuple[str, ...],
        value_columns: Sequence[List[Any]],
        distinct: bool = False,
    ) -> "QueryResult":
        """Late-materialization boundary: the columnar executor carries
        per-column value lists all the way here; client-visible row
        tuples exist only from this point on.  ``distinct`` dedupes the
        materialized tuples in first-occurrence order (DISTINCT is
        defined over output rows, so it belongs at this boundary)."""
        rows: List[Tuple[Any, ...]] = (
            list(zip(*value_columns)) if value_columns else []
        )
        if distinct:
            seen = set()
            unique: List[Tuple[Any, ...]] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        return cls(columns=tuple(columns), rows=rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def __bool__(self) -> bool:
        return bool(self.rows)

    def scalar(self) -> Any:
        """First column of the first row, or None on empty results.

        Matches the common ``SELECT count(*)`` consumption pattern in the
        paper's examples (``partCount = executeQuery(qt)``).
        """
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> List[Any]:
        position = self.columns.index(name)
        return [row[position] for row in self.rows]

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]
