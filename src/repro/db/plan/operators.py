"""Physical operators.

Access paths (sequential scan, hash-index equality, clustered-range,
ordered-index range) produce ``(row_id, row)`` lists; the relational
operators (filter, project, aggregate, sort, limit) work on materialized
lists — the engine targets correctness and cost *shape*, not raw speed.

Cost charging:

* ``SeqScanOp`` touches every heap page, through the shared-scan manager
  so concurrent identical scans pay once.
* Index paths touch the probed index page(s) plus the distinct heap
  pages of matching rows.
* Every operator charges per-row CPU in one batch.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..catalog_types import TableInfo
from ..errors import PlanError
from ..index import HashIndex, OrderedIndex
from ..sql.ast_nodes import (
    Aggregate,
    ColumnRef,
    Expr,
    OrderItem,
    SelectItem,
    Star,
)
from ..scans import ColumnBatch, iter_column_batches
from ..storage import OrderKey
from ..types import Row
from .context import ExecutionContext
from .expr_eval import ColumnarEvaluator, RowEvaluator

RowIdRow = Tuple[int, Row]
#: A selection vector: row ids into the table's column lists.
Selection = List[int]


# ----------------------------------------------------------------------
# access paths
# ----------------------------------------------------------------------


class SeqScanOp:
    """Full table scan: all pages, shared with concurrent scanners."""

    def __init__(self, info: TableInfo) -> None:
        self._info = info

    def run(self, ctx: ExecutionContext) -> List[RowIdRow]:
        self._scan_io(ctx)
        rows = list(self._info.heap.iter_rows())
        ctx.charge_cpu(rows=len(rows))
        return rows

    def _scan_io(self, ctx: ExecutionContext) -> None:
        heap = self._info.heap
        name = self._info.name

        def do_io() -> None:
            ctx.touch_pages(name, range(heap.page_count))

        ctx.scans.run(name, do_io)

    def run_columnar(self, ctx: ExecutionContext):
        """Column batches over the whole table (IO identical to
        :meth:`run`; no tuples are built)."""
        self._scan_io(ctx)
        return iter_column_batches(self._info.heap)


class HashEqOp:
    """Hash-index equality probe followed by heap fetches."""

    def __init__(self, info: TableInfo, index: HashIndex, value_expr: Expr) -> None:
        self._info = info
        self._index = index
        self._value_expr = value_expr

    def run(self, ctx: ExecutionContext) -> List[RowIdRow]:
        evaluator = RowEvaluator(self._info.heap.schema, self._info.name, ctx.params)
        value = evaluator.evaluate(self._value_expr, ())
        ctx.touch_page(self._index.io_name, self._index.page_for(value))
        row_ids = self._index.lookup(value)
        return _fetch_rows(ctx, self._info, row_ids)

    def run_columnar(self, ctx: ExecutionContext) -> List[ColumnBatch]:
        evaluator = RowEvaluator(self._info.heap.schema, self._info.name, ctx.params)
        value = evaluator.evaluate(self._value_expr, ())
        ctx.touch_page(self._index.io_name, self._index.page_for(value))
        sel = _fetch_selection(ctx, self._info, self._index.lookup(value))
        return _one_batch(self._info, sel)


class ClusteredEqOp:
    """Equality on the clustering column: one contiguous page run."""

    def __init__(self, info: TableInfo, value_expr: Expr) -> None:
        self._info = info
        self._value_expr = value_expr

    def run(self, ctx: ExecutionContext) -> List[RowIdRow]:
        heap = self._info.heap
        evaluator = RowEvaluator(heap.schema, self._info.name, ctx.params)
        value = evaluator.evaluate(self._value_expr, ())
        low, high = heap.cluster_range(value)
        results: List[RowIdRow] = []
        pages_touched = set()
        for row_id in range(low, high):
            row = heap.fetch(row_id)
            if row is None:
                continue
            page_no = heap.page_of(row_id)
            if page_no not in pages_touched:
                pages_touched.add(page_no)
                ctx.touch_page(self._info.name, page_no)
            results.append((row_id, row))
        ctx.charge_cpu(rows=len(results))
        return results

    def run_columnar(self, ctx: ExecutionContext) -> List[ColumnBatch]:
        heap = self._info.heap
        evaluator = RowEvaluator(heap.schema, self._info.name, ctx.params)
        value = evaluator.evaluate(self._value_expr, ())
        low, high = heap.cluster_range(value)
        return _one_batch(
            self._info, _fetch_selection(ctx, self._info, range(low, high))
        )


class OrderedRangeOp:
    """Ordered-index range scan followed by heap fetches."""

    def __init__(
        self,
        info: TableInfo,
        index: OrderedIndex,
        low: Optional[Expr],
        high: Optional[Expr],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        self._info = info
        self._index = index
        self._low = low
        self._high = high
        self._low_inclusive = low_inclusive
        self._high_inclusive = high_inclusive

    def run(self, ctx: ExecutionContext) -> List[RowIdRow]:
        evaluator = RowEvaluator(self._info.heap.schema, self._info.name, ctx.params)
        low = evaluator.evaluate(self._low, ()) if self._low is not None else None
        high = evaluator.evaluate(self._high, ()) if self._high is not None else None
        probe = low if low is not None else high
        if probe is not None:
            ctx.touch_page(self._index.io_name, self._index.page_for(probe))
        row_ids = self._index.range(
            low, high, self._low_inclusive, self._high_inclusive
        )
        return _fetch_rows(ctx, self._info, row_ids)

    def run_columnar(self, ctx: ExecutionContext) -> List[ColumnBatch]:
        evaluator = RowEvaluator(self._info.heap.schema, self._info.name, ctx.params)
        low = evaluator.evaluate(self._low, ()) if self._low is not None else None
        high = evaluator.evaluate(self._high, ()) if self._high is not None else None
        probe = low if low is not None else high
        if probe is not None:
            ctx.touch_page(self._index.io_name, self._index.page_for(probe))
        row_ids = self._index.range(
            low, high, self._low_inclusive, self._high_inclusive
        )
        return _one_batch(self._info, _fetch_selection(ctx, self._info, row_ids))


def _fetch_selection(
    ctx: ExecutionContext, info: TableInfo, row_ids
) -> Selection:
    """The columnar twin of :func:`_fetch_rows`: keep live row ids and
    touch their distinct heap pages in first-encounter order (the same
    IO the row path pays), but build no tuples."""
    heap = info.heap
    valid = heap.validity_view()
    sel: Selection = []
    pages_touched = set()
    for row_id in row_ids:
        if not valid[row_id]:
            continue
        page_no = heap.page_of(row_id)
        if page_no not in pages_touched:
            pages_touched.add(page_no)
            ctx.touch_page(info.name, page_no)
        sel.append(row_id)
    ctx.charge_cpu(rows=len(sel))
    return sel


def _one_batch(info: TableInfo, sel: Selection) -> List[ColumnBatch]:
    if not sel:
        return []
    return [ColumnBatch(info.heap.columns_view(), sel)]


def _fetch_rows(
    ctx: ExecutionContext, info: TableInfo, row_ids: Sequence[int]
) -> List[RowIdRow]:
    heap = info.heap
    results: List[RowIdRow] = []
    pages_touched = set()
    for row_id in row_ids:
        row = heap.fetch(row_id)
        if row is None:
            continue
        page_no = heap.page_of(row_id)
        if page_no not in pages_touched:
            pages_touched.add(page_no)
            ctx.touch_page(info.name, page_no)
        results.append((row_id, row))
    ctx.charge_cpu(rows=len(results))
    return results


# ----------------------------------------------------------------------
# relational operators
# ----------------------------------------------------------------------


def apply_filter(
    ctx: ExecutionContext,
    info: TableInfo,
    rows: List[RowIdRow],
    where: Optional[Expr],
) -> List[RowIdRow]:
    if where is None:
        return rows
    evaluator = RowEvaluator(info.heap.schema, info.name, ctx.params)
    kept = [(row_id, row) for row_id, row in rows if evaluator.matches(where, row)]
    ctx.charge_cpu(rows=len(rows))
    return kept


def apply_order(
    info: TableInfo, rows: List[RowIdRow], order_by: Sequence[OrderItem]
) -> List[RowIdRow]:
    if not order_by:
        return rows
    schema = info.heap.schema
    positions = [
        (schema.position(item.column, info.name), item.descending)
        for item in order_by
    ]
    # Stable multi-key sort: apply keys right-to-left.
    ordered = list(rows)
    for position, descending in reversed(positions):
        ordered.sort(key=lambda pair: OrderKey(pair[1][position]), reverse=descending)
    return ordered


def apply_limit(
    ctx: ExecutionContext,
    info: TableInfo,
    rows: List[RowIdRow],
    limit: Optional[Expr],
) -> List[RowIdRow]:
    if limit is None:
        return rows
    evaluator = RowEvaluator(info.heap.schema, info.name, ctx.params)
    count = evaluator.evaluate(limit, ())
    if not isinstance(count, int) or count < 0:
        raise PlanError(f"LIMIT must be a non-negative integer, got {count!r}")
    return rows[:count]


def project(
    ctx: ExecutionContext,
    info: TableInfo,
    rows: List[RowIdRow],
    items: Sequence[SelectItem],
    distinct: bool,
) -> Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]:
    schema = info.heap.schema
    if len(items) == 1 and isinstance(items[0].expr, Star):
        columns = schema.names()
        output = [row for _row_id, row in rows]
    else:
        evaluator = RowEvaluator(schema, info.name, ctx.params)
        columns = tuple(_item_name(item, position) for position, item in enumerate(items))
        output = [
            tuple(evaluator.evaluate(item.expr, row) for item in items)
            for _row_id, row in rows
        ]
        ctx.charge_cpu(rows=len(rows))
    if distinct:
        seen = set()
        unique: List[Tuple[Any, ...]] = []
        for row in output:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        output = unique
    return columns, output


def aggregate(
    ctx: ExecutionContext,
    info: TableInfo,
    rows: List[RowIdRow],
    items: Sequence[SelectItem],
) -> Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]:
    """Evaluate an all-aggregate select list (no GROUP BY in the subset)."""
    evaluator = RowEvaluator(info.heap.schema, info.name, ctx.params)
    columns = tuple(_item_name(item, position) for position, item in enumerate(items))
    values: List[Any] = []
    for item in items:
        expr = item.expr
        if not isinstance(expr, Aggregate):
            raise PlanError(
                "mixing aggregates and plain columns requires GROUP BY, "
                "which this subset does not support"
            )
        values.append(_run_aggregate(evaluator, expr, rows))
    ctx.charge_cpu(rows=len(rows) * max(1, len(items)))
    return columns, [tuple(values)]


def aggregate_grouped(
    ctx: ExecutionContext,
    info: TableInfo,
    rows: List[RowIdRow],
    items: Sequence[SelectItem],
    group_by: Sequence[str],
) -> Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]:
    """GROUP BY evaluation: one output row per distinct key tuple.

    Plain (non-aggregate) select items must reference grouping columns.
    Groups appear in first-occurrence order (stable; ORDER BY reorders
    explicitly when asked).
    """
    schema = info.heap.schema
    evaluator = RowEvaluator(schema, info.name, ctx.params)
    key_positions = [schema.position(name, info.name) for name in group_by]
    for item in items:
        expr = item.expr
        if isinstance(expr, Aggregate):
            continue
        if isinstance(expr, ColumnRef) and expr.name in group_by:
            continue
        raise PlanError(
            "non-aggregate select items must be GROUP BY columns "
            f"(offending item: {getattr(expr, 'name', expr)!r})"
        )
    groups: "dict[tuple, List[RowIdRow]]" = {}
    order: List[tuple] = []
    for row_id, row in rows:
        key = tuple(row[position] for position in key_positions)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((row_id, row))
    columns = tuple(_item_name(item, position) for position, item in enumerate(items))
    output: List[Tuple[Any, ...]] = []
    for key in order:
        members = groups[key]
        values: List[Any] = []
        for item in items:
            expr = item.expr
            if isinstance(expr, Aggregate):
                values.append(_run_aggregate(evaluator, expr, members))
            else:
                assert isinstance(expr, ColumnRef)
                values.append(key[group_by.index(expr.name)])
        output.append(tuple(values))
    ctx.charge_cpu(rows=len(rows) * max(1, len(items)))
    return columns, output


def order_output_rows(
    columns: Tuple[str, ...],
    rows: List[Tuple[Any, ...]],
    order_by: Sequence[OrderItem],
) -> List[Tuple[Any, ...]]:
    """ORDER BY over *output* rows (grouped results), by column name."""
    if not order_by:
        return rows
    ordered = list(rows)
    for item in reversed(order_by):
        try:
            position = columns.index(item.column)
        except ValueError:
            raise PlanError(
                f"ORDER BY column {item.column!r} is not in the output"
            ) from None
        ordered.sort(
            key=lambda row: OrderKey(row[position]), reverse=item.descending
        )
    return ordered


def _run_aggregate(
    evaluator: RowEvaluator, expr: Aggregate, rows: List[RowIdRow]
) -> Any:
    if isinstance(expr.argument, Star):
        return len(rows)
    observed = [
        value
        for value in (
            evaluator.evaluate(expr.argument, row) for _row_id, row in rows
        )
        if value is not None
    ]
    if expr.distinct:
        observed = list(dict.fromkeys(observed))
    if expr.func == "count":
        return len(observed)
    if not observed:
        return None
    if expr.func == "sum":
        return sum(observed)
    if expr.func == "min":
        return min(observed)
    if expr.func == "max":
        return max(observed)
    if expr.func == "avg":
        return sum(observed) / len(observed)
    raise PlanError(f"unknown aggregate: {expr.func!r}")


# ----------------------------------------------------------------------
# columnar relational operators — selection vectors in, selection
# vectors (or per-column value lists) out; row tuples appear only at the
# QueryResult boundary
# ----------------------------------------------------------------------


def columnar_order(
    info: TableInfo,
    columns: Tuple[List[Any], ...],
    sel: Selection,
    order_by: Sequence[OrderItem],
) -> Selection:
    """ORDER BY as a sort of the selection vector (no row tuples)."""
    if not order_by:
        return sel
    schema = info.heap.schema
    positions = [
        (schema.position(item.column, info.name), item.descending)
        for item in order_by
    ]
    ordered = list(sel)
    # Stable multi-key sort: apply keys right-to-left.
    for position, descending in reversed(positions):
        column = columns[position]
        ordered.sort(key=lambda rid: OrderKey(column[rid]), reverse=descending)
    return ordered


def columnar_limit(
    ctx: ExecutionContext,
    info: TableInfo,
    sel: Selection,
    limit: Optional[Expr],
) -> Selection:
    if limit is None:
        return sel
    evaluator = RowEvaluator(info.heap.schema, info.name, ctx.params)
    count = evaluator.evaluate(limit, ())
    if not isinstance(count, int) or count < 0:
        raise PlanError(f"LIMIT must be a non-negative integer, got {count!r}")
    return sel[:count]


def columnar_project(
    ctx: ExecutionContext,
    info: TableInfo,
    evaluator: ColumnarEvaluator,
    columns: Tuple[List[Any], ...],
    sel: Selection,
    items: Sequence[SelectItem],
) -> Tuple[Tuple[str, ...], List[List[Any]]]:
    """Projection as column slicing: returns output names plus one value
    list per output column — still columnar; the caller materializes
    tuples at the result boundary."""
    schema = info.heap.schema
    if len(items) == 1 and isinstance(items[0].expr, Star):
        names = schema.names()
        value_columns = [[column[rid] for rid in sel] for column in columns]
        return names, value_columns
    names = tuple(_item_name(item, position) for position, item in enumerate(items))
    value_columns = [evaluator.values(item.expr, sel) for item in items]
    ctx.charge_cpu(rows=len(sel))
    return names, value_columns


def columnar_aggregate(
    ctx: ExecutionContext,
    evaluator: ColumnarEvaluator,
    sel: Selection,
    items: Sequence[SelectItem],
) -> Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]:
    """All-aggregate select list over a selection vector."""
    columns = tuple(_item_name(item, position) for position, item in enumerate(items))
    values: List[Any] = []
    for item in items:
        expr = item.expr
        if not isinstance(expr, Aggregate):
            raise PlanError(
                "mixing aggregates and plain columns requires GROUP BY, "
                "which this subset does not support"
            )
        values.append(_run_columnar_aggregate(evaluator, expr, sel))
    ctx.charge_cpu(rows=len(sel) * max(1, len(items)))
    return columns, [tuple(values)]


def columnar_aggregate_grouped(
    ctx: ExecutionContext,
    info: TableInfo,
    evaluator: ColumnarEvaluator,
    columns: Tuple[List[Any], ...],
    sel: Selection,
    items: Sequence[SelectItem],
    group_by: Sequence[str],
) -> Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]:
    """GROUP BY over a selection vector: keys are gathered straight from
    the grouping columns; each group keeps its own selection vector."""
    schema = info.heap.schema
    key_columns = [
        columns[schema.position(name, info.name)] for name in group_by
    ]
    for item in items:
        expr = item.expr
        if isinstance(expr, Aggregate):
            continue
        if isinstance(expr, ColumnRef) and expr.name in group_by:
            continue
        raise PlanError(
            "non-aggregate select items must be GROUP BY columns "
            f"(offending item: {getattr(expr, 'name', expr)!r})"
        )
    groups: "dict[tuple, Selection]" = {}
    order: List[tuple] = []
    for rid in sel:
        key = tuple(column[rid] for column in key_columns)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(rid)
    names = tuple(_item_name(item, position) for position, item in enumerate(items))
    output: List[Tuple[Any, ...]] = []
    for key in order:
        member_sel = groups[key]
        values: List[Any] = []
        for item in items:
            expr = item.expr
            if isinstance(expr, Aggregate):
                values.append(_run_columnar_aggregate(evaluator, expr, member_sel))
            else:
                assert isinstance(expr, ColumnRef)
                values.append(key[group_by.index(expr.name)])
        output.append(tuple(values))
    ctx.charge_cpu(rows=len(sel) * max(1, len(items)))
    return names, output


def _run_columnar_aggregate(
    evaluator: ColumnarEvaluator, expr: Aggregate, sel: Selection
) -> Any:
    if isinstance(expr.argument, Star):
        return len(sel)
    observed = [
        value
        for value in evaluator.values(expr.argument, sel)
        if value is not None
    ]
    if expr.distinct:
        observed = list(dict.fromkeys(observed))
    if expr.func == "count":
        return len(observed)
    if not observed:
        return None
    if expr.func == "sum":
        return sum(observed)
    if expr.func == "min":
        return min(observed)
    if expr.func == "max":
        return max(observed)
    if expr.func == "avg":
        return sum(observed) / len(observed)
    raise PlanError(f"unknown aggregate: {expr.func!r}")


def _item_name(item: SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Aggregate):
        if isinstance(expr.argument, Star):
            return f"{expr.func}(*)"
        if isinstance(expr.argument, ColumnRef):
            return f"{expr.func}({expr.argument.name})"
        return expr.func
    return f"col{position}"
