"""Execution context: catalog access plus simulated cost charging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from ..buffer import BufferPool
from ..catalog import Catalog
from ..latency import LatencyMeter, LatencyProfile
from ..scans import SharedScanManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..txn import Transaction


@dataclass
class ExecutionContext:
    """Everything an operator needs to run one statement.

    One context is created per statement execution; ``params`` holds the
    positional bind values.  ``charge_cpu`` *accumulates* CPU costs and
    the server flushes them in a single sleep per statement — per-
    operator sleeps would each pay the OS timer slack and distort the
    simulated scale.
    """

    catalog: Catalog
    buffer: BufferPool
    scans: SharedScanManager
    profile: LatencyProfile
    meter: LatencyMeter
    params: Sequence = ()
    #: Explicit transaction the statement runs under, or None for
    #: autocommit.  Write operators record undo entries through the
    #: ``record_*`` helpers below.
    txn: Optional["Transaction"] = None
    #: Which executor runs this statement: "row" (tuple-at-a-time) or
    #: "columnar" (batch-at-a-time over selection vectors).
    executor: str = "row"
    _cpu_accum_s: float = 0.0
    #: Per-batch scan accounting the columnar executor fills in; the
    #: server folds these into the metrics registry and the execute span.
    scan_batches: int = 0
    scan_rows: int = 0
    scan_selectivities: List[float] = field(default_factory=list)

    def note_scan_batch(self, scanned: int, kept: int) -> None:
        """Record one column batch: ``scanned`` candidate rows entered
        the filter, ``kept`` survived."""
        self.scan_batches += 1
        self.scan_rows += scanned
        if scanned:
            self.scan_selectivities.append(kept / scanned)

    def charge_cpu(self, rows: int = 0, fixed: bool = False) -> None:
        cost = rows * self.profile.cpu_per_row_s
        if fixed:
            cost += self.profile.cpu_fixed_s
        self._cpu_accum_s += cost

    def flush_cpu(self) -> None:
        """Sleep once for all accumulated CPU cost (server calls this
        after plan execution)."""
        if self._cpu_accum_s > 0:
            self.meter.charge("cpu", self._cpu_accum_s)
            self._cpu_accum_s = 0.0

    def absorb_cpu(self, other: "ExecutionContext") -> None:
        """Fold ``other``'s accumulated CPU into this context.

        The batch-demux operator evaluates per-binding work on
        sub-contexts (each carries its binding's params) but the server
        flushes only the batch context — one sleep for the whole batch.
        Scan accounting travels along so batch metrics stay complete.
        """
        self._cpu_accum_s += other._cpu_accum_s
        other._cpu_accum_s = 0.0
        self.scan_batches += other.scan_batches
        self.scan_rows += other.scan_rows
        self.scan_selectivities.extend(other.scan_selectivities)
        other.scan_batches = 0
        other.scan_rows = 0
        other.scan_selectivities = []

    def derive(self, params: Sequence) -> "ExecutionContext":
        """A sub-context sharing every resource but carrying ``params``
        (the batch-demux operator's per-binding evaluation context)."""
        return ExecutionContext(
            catalog=self.catalog,
            buffer=self.buffer,
            scans=self.scans,
            profile=self.profile,
            meter=self.meter,
            params=params,
            txn=self.txn,
            executor=self.executor,
        )

    def touch_page(self, io_name: str, page_no: int) -> bool:
        """Access one page through the buffer pool; True on hit."""
        return self.buffer.access(io_name, page_no)

    def touch_pages(self, io_name: str, page_nos: Iterable[int]) -> int:
        """Access a run of pages in one buffer-pool round trip; returns
        the hit count (full scans use this instead of per-page calls)."""
        return self.buffer.access_many(io_name, page_nos)

    # ------------------------------------------------------------------
    # transactional undo recording (no-ops under autocommit)
    # ------------------------------------------------------------------
    def record_insert(self, table: str, row_id: int, row) -> None:
        if self.txn is not None:
            self.txn.record_insert(table, row_id, row)

    def record_update(self, table: str, row_id: int, old_row, new_row) -> None:
        if self.txn is not None:
            self.txn.record_update(table, row_id, old_row, new_row)

    def record_delete(self, table: str, row_id: int, row) -> None:
        if self.txn is not None:
            self.txn.record_delete(table, row_id, row)
