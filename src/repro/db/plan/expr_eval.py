"""Row-at-a-time expression evaluation with SQL NULL semantics.

Comparisons involving NULL yield None (unknown); logical operators use
three-valued logic; a WHERE clause accepts a row only when the predicate
is strictly True.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..errors import PlanError, UnknownColumnError
from ..sql.ast_nodes import (
    Aggregate,
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Literal,
    LogicalOp,
    NotOp,
    Param,
    Star,
)
from ..types import Row, Schema


class RowEvaluator:
    """Evaluates expressions against rows of one schema."""

    def __init__(self, schema: Schema, table: str, params: Sequence) -> None:
        self._schema = schema
        self._table = table
        self._params = params

    def evaluate(self, expr: Expr, row: Row) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Param):
            return self._params[expr.index]
        if isinstance(expr, ColumnRef):
            return row[self._schema.position(expr.name, self._table)]
        if isinstance(expr, BinaryOp):
            return self._binary(expr, row)
        if isinstance(expr, LogicalOp):
            return self._logical(expr, row)
        if isinstance(expr, NotOp):
            value = self.evaluate(expr.operand, row)
            return None if value is None else not _truthy(value)
        if isinstance(expr, IsNull):
            is_null = self.evaluate(expr.operand, row) is None
            return (not is_null) if expr.negated else is_null
        if isinstance(expr, InList):
            return self._in_list(expr, row)
        if isinstance(expr, Between):
            return self._between(expr, row)
        if isinstance(expr, Aggregate):
            raise PlanError("aggregate used in a row context")
        if isinstance(expr, Star):
            raise PlanError("'*' used in a scalar context")
        raise PlanError(f"cannot evaluate expression: {expr!r}")

    def matches(self, where: Optional[Expr], row: Row) -> bool:
        """WHERE acceptance: NULL (unknown) rejects the row."""
        if where is None:
            return True
        return self.evaluate(where, row) is True

    # ------------------------------------------------------------------
    def _binary(self, expr: BinaryOp, row: Row) -> Any:
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None  # SQL engines typically error; NULL keeps
                # generated workloads total, and tests pin this choice.
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and result == int(result):
                return int(result)
            return result
        if op == "%":
            if right == 0:
                return None
            return left % right
        raise PlanError(f"unknown operator: {op!r}")

    def _logical(self, expr: LogicalOp, row: Row) -> Any:
        left = self.evaluate(expr.left, row)
        if expr.op == "and":
            if left is False:
                return False
            right = self.evaluate(expr.right, row)
            if left is None:
                return None if right is not False else False
            return right if not isinstance(right, bool) else (left is True and right)
        if expr.op == "or":
            if left is True:
                return True
            right = self.evaluate(expr.right, row)
            if left is None:
                return None if right is not True else True
            return right
        raise PlanError(f"unknown logical operator: {expr.op!r}")

    def _in_list(self, expr: InList, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if expr.negated else True
        if saw_null:
            return None
        return True if expr.negated else False

    def _between(self, expr: Between, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        low = self.evaluate(expr.low, row)
        high = self.evaluate(expr.high, row)
        if value is None or low is None or high is None:
            return None
        inside = low <= value <= high
        return (not inside) if expr.negated else inside


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    return bool(value)
