"""Expression evaluation with SQL NULL semantics — row- and batch-wise.

Comparisons involving NULL yield None (unknown); logical operators use
three-valued logic; a WHERE clause accepts a row only when the predicate
is strictly True.

:class:`RowEvaluator` interprets the AST once per row (the classic
executor).  :class:`ColumnarEvaluator` is the vectorized counterpart:
it filters *selection vectors* (lists of row ids) against whole column
lists — one comprehension per predicate conjunct instead of one AST walk
per row — and gathers projection values column-at-a-time.  Expressions
without a single-column fast path fall back to the row evaluator over a
lazy column-backed row view, so three-valued-logic semantics are
identical by construction.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..errors import PlanError, UnknownColumnError
from ..sql.ast_nodes import (
    Aggregate,
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Literal,
    LogicalOp,
    NotOp,
    Param,
    Star,
)
from ..types import Row, Schema


class RowEvaluator:
    """Evaluates expressions against rows of one schema."""

    def __init__(self, schema: Schema, table: str, params: Sequence) -> None:
        self._schema = schema
        self._table = table
        self._params = params

    def evaluate(self, expr: Expr, row: Row) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Param):
            return self._params[expr.index]
        if isinstance(expr, ColumnRef):
            return row[self._schema.position(expr.name, self._table)]
        if isinstance(expr, BinaryOp):
            return self._binary(expr, row)
        if isinstance(expr, LogicalOp):
            return self._logical(expr, row)
        if isinstance(expr, NotOp):
            value = self.evaluate(expr.operand, row)
            return None if value is None else not _truthy(value)
        if isinstance(expr, IsNull):
            is_null = self.evaluate(expr.operand, row) is None
            return (not is_null) if expr.negated else is_null
        if isinstance(expr, InList):
            return self._in_list(expr, row)
        if isinstance(expr, Between):
            return self._between(expr, row)
        if isinstance(expr, Aggregate):
            raise PlanError("aggregate used in a row context")
        if isinstance(expr, Star):
            raise PlanError("'*' used in a scalar context")
        raise PlanError(f"cannot evaluate expression: {expr!r}")

    def matches(self, where: Optional[Expr], row: Row) -> bool:
        """WHERE acceptance: NULL (unknown) rejects the row."""
        if where is None:
            return True
        return self.evaluate(where, row) is True

    # ------------------------------------------------------------------
    def _binary(self, expr: BinaryOp, row: Row) -> Any:
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None  # SQL engines typically error; NULL keeps
                # generated workloads total, and tests pin this choice.
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and result == int(result):
                return int(result)
            return result
        if op == "%":
            if right == 0:
                return None
            return left % right
        raise PlanError(f"unknown operator: {op!r}")

    def _logical(self, expr: LogicalOp, row: Row) -> Any:
        left = self.evaluate(expr.left, row)
        if expr.op == "and":
            if left is False:
                return False
            right = self.evaluate(expr.right, row)
            if left is None:
                return None if right is not False else False
            return right if not isinstance(right, bool) else (left is True and right)
        if expr.op == "or":
            if left is True:
                return True
            right = self.evaluate(expr.right, row)
            if left is None:
                return None if right is not True else True
            return right
        raise PlanError(f"unknown logical operator: {expr.op!r}")

    def _in_list(self, expr: InList, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if expr.negated else True
        if saw_null:
            return None
        return True if expr.negated else False

    def _between(self, expr: Between, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        low = self.evaluate(expr.low, row)
        high = self.evaluate(expr.high, row)
        if value is None or low is None or high is None:
            return None
        inside = low <= value <= high
        return (not inside) if expr.negated else inside


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    return bool(value)


def and_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a top-level AND tree into its conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, LogicalOp) and expr.op == "and":
        return and_conjuncts(expr.left) + and_conjuncts(expr.right)
    return [expr]


def has_column_ref(expr: Expr) -> bool:
    """True when evaluating ``expr`` reads any row column."""
    if isinstance(expr, (Literal, Param)):
        return False
    if isinstance(expr, ColumnRef):
        return True
    if isinstance(expr, (BinaryOp, LogicalOp)):
        return has_column_ref(expr.left) or has_column_ref(expr.right)
    if isinstance(expr, NotOp):
        return has_column_ref(expr.operand)
    if isinstance(expr, IsNull):
        return has_column_ref(expr.operand)
    if isinstance(expr, InList):
        return has_column_ref(expr.operand) or any(
            has_column_ref(item) for item in expr.items
        )
    if isinstance(expr, Between):
        return (
            has_column_ref(expr.operand)
            or has_column_ref(expr.low)
            or has_column_ref(expr.high)
        )
    return True  # Aggregate/Star/unknown: stay conservative


class _ColumnCursor:
    """Lazy row facade over column storage: ``row[pos]`` reads
    ``columns[pos][rid]`` — lets :class:`RowEvaluator` run unmodified
    over columnar data without materializing a tuple per row."""

    __slots__ = ("columns", "rid")

    def __init__(self, columns: Tuple[List[Any], ...]) -> None:
        self.columns = columns
        self.rid = 0

    def __getitem__(self, position: int) -> Any:
        return self.columns[position][self.rid]


class ColumnarEvaluator:
    """Vectorized evaluation of one statement's expressions over one
    table's column lists.

    Not thread-safe: create one per statement execution (the generic
    fallback shares a mutable cursor).
    """

    def __init__(
        self,
        schema: Schema,
        table: str,
        params: Sequence,
        columns: Tuple[List[Any], ...],
    ) -> None:
        self._schema = schema
        self._table = table
        self._columns = columns
        self._rows = RowEvaluator(schema, table, params)
        self._cursor = _ColumnCursor(columns)

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def filter(self, where: Optional[Expr], sel: List[int]) -> List[int]:
        """Narrow a selection vector to the rows where ``where`` is
        strictly True.  Top-level AND decomposes into conjuncts — each
        narrows the vector before the next runs (short-circuit across
        the batch rather than per row)."""
        if where is None:
            return sel
        for conjunct in and_conjuncts(where):
            if not sel:
                break
            sel = self._filter_one(conjunct, sel)
        return sel

    def _filter_one(self, expr: Expr, sel: List[int]) -> List[int]:
        if isinstance(expr, BinaryOp):
            fast = self._filter_comparison(expr, sel)
            if fast is not None:
                return fast
        elif isinstance(expr, IsNull):
            operand = self._column_of(expr.operand)
            if operand is not None:
                if expr.negated:
                    return [rid for rid in sel if operand[rid] is not None]
                return [rid for rid in sel if operand[rid] is None]
        elif isinstance(expr, InList):
            fast = self._filter_in_list(expr, sel)
            if fast is not None:
                return fast
        elif isinstance(expr, Between):
            fast = self._filter_between(expr, sel)
            if fast is not None:
                return fast
        # Generic fallback: the row evaluator over a lazy column cursor —
        # identical 3VL semantics, no tuple materialization.
        cursor = self._cursor
        evaluate = self._rows.evaluate
        out: List[int] = []
        for rid in sel:
            cursor.rid = rid
            if evaluate(expr, cursor) is True:
                out.append(rid)
        return out

    def _filter_comparison(
        self, expr: BinaryOp, sel: List[int]
    ) -> Optional[List[int]]:
        """``column <op> constant`` (either side) in one comprehension.

        Returns None when the shape doesn't match (caller falls back).
        """
        op = expr.op
        if op not in ("=", "<>", "<", "<=", ">", ">="):
            return None
        column = self._column_of(expr.left)
        if column is not None and not has_column_ref(expr.right):
            const = self._rows.evaluate(expr.right, ())
        else:
            column = self._column_of(expr.right)
            if column is None or has_column_ref(expr.left):
                return None
            const = self._rows.evaluate(expr.left, ())
            op = _FLIP[op]
        if const is None:
            return []  # comparison with NULL is never True
        if op == "=":
            return [rid for rid in sel if column[rid] == const]
        if op == "<>":
            return [
                rid
                for rid in sel
                if column[rid] is not None and column[rid] != const
            ]
        if op == "<":
            return [
                rid
                for rid in sel
                if column[rid] is not None and column[rid] < const
            ]
        if op == "<=":
            return [
                rid
                for rid in sel
                if column[rid] is not None and column[rid] <= const
            ]
        if op == ">":
            return [
                rid
                for rid in sel
                if column[rid] is not None and column[rid] > const
            ]
        return [
            rid for rid in sel if column[rid] is not None and column[rid] >= const
        ]

    def _filter_in_list(
        self, expr: InList, sel: List[int]
    ) -> Optional[List[int]]:
        column = self._column_of(expr.operand)
        if column is None:
            return None
        if any(has_column_ref(item) for item in expr.items):
            return None
        items = [self._rows.evaluate(item, ()) for item in expr.items]
        saw_null = any(item is None for item in items)
        candidates: Any = [item for item in items if item is not None]
        try:
            candidates = set(candidates)
        except TypeError:
            pass  # unhashable constants: linear membership keeps == semantics
        if expr.negated:
            if saw_null:
                return []  # NOT IN with a NULL item is never True
            return [
                rid
                for rid in sel
                if column[rid] is not None and column[rid] not in candidates
            ]
        return [
            rid
            for rid in sel
            if column[rid] is not None and column[rid] in candidates
        ]

    def _filter_between(
        self, expr: Between, sel: List[int]
    ) -> Optional[List[int]]:
        column = self._column_of(expr.operand)
        if column is None:
            return None
        if has_column_ref(expr.low) or has_column_ref(expr.high):
            return None
        low = self._rows.evaluate(expr.low, ())
        high = self._rows.evaluate(expr.high, ())
        if low is None or high is None:
            return []
        if expr.negated:
            return [
                rid
                for rid in sel
                if column[rid] is not None and not (low <= column[rid] <= high)
            ]
        return [
            rid
            for rid in sel
            if column[rid] is not None and low <= column[rid] <= high
        ]

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def values(self, expr: Expr, sel: List[int]) -> List[Any]:
        """Evaluate ``expr`` for every selected row, column-at-a-time."""
        column = self._column_of(expr)
        if column is not None:
            return [column[rid] for rid in sel]
        if not has_column_ref(expr):
            value = self._rows.evaluate(expr, ())
            return [value] * len(sel)
        cursor = self._cursor
        evaluate = self._rows.evaluate
        out: List[Any] = []
        for rid in sel:
            cursor.rid = rid
            out.append(evaluate(expr, cursor))
        return out

    def scalar(self, expr: Expr) -> Any:
        """Evaluate a row-independent expression once."""
        return self._rows.evaluate(expr, ())

    # ------------------------------------------------------------------
    def _column_of(self, expr: Expr) -> Optional[List[Any]]:
        if isinstance(expr, ColumnRef):
            return self._columns[self._schema.position(expr.name, self._table)]
        return None


_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
