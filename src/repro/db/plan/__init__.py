"""Query planning and execution.

The planner turns a parsed statement into a small operator tree; the
executor runs it against the catalog, charging simulated CPU and IO
costs through the execution context.
"""

from .context import ExecutionContext
from .demux import BindingOutcome, demuxable, execute_batch_select
from .planner import Planner
from .result import QueryResult

__all__ = [
    "BindingOutcome",
    "ExecutionContext",
    "Planner",
    "QueryResult",
    "demuxable",
    "execute_batch_select",
]
