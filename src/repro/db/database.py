"""The ``Database`` facade: one-stop construction and administration.

Ties together disk, buffer pool, shared-scan manager, catalog and server,
and hands out client connections.  The benchmark harness uses
``flush_cache`` (cold runs), ``bulk_load`` (latency-free table builds)
and ``io_report`` (per-run IO accounting for EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..backends.base import Backend, resolve_backend_name
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .buffer import BufferPool
from .catalog import Catalog
from .disk import SimulatedDisk
from .latency import INSTANT, LatencyMeter, LatencyProfile
from .scans import SharedScanManager
from .server import DatabaseServer
from .storage import DEFAULT_ROWS_PER_PAGE
from .types import Schema, schema_of


class Database:
    """An embedded simulated database instance."""

    def __init__(
        self,
        profile: LatencyProfile = INSTANT,
        elevator: bool = True,
        shared_scans: bool = True,
    ) -> None:
        self.profile = profile
        self.meter = LatencyMeter()
        self.disk = SimulatedDisk(profile, self.meter, elevator=elevator)
        self.buffer = BufferPool(profile.buffer_pool_pages, self.disk)
        self.scans = SharedScanManager(enabled=shared_scans)
        self.catalog = Catalog(self.disk)
        #: Database-wide observability surfaces.  The tracer starts
        #: disabled (``connect(trace=True)`` enables it); the registry
        #: always exists — server and IO stats register as sources up
        #: front, and snapshotting is pull-based, so an unused registry
        #: costs nothing per query.
        self.tracer = Tracer(enabled=False)
        self.metrics = MetricsRegistry()
        self.server = DatabaseServer(
            self.catalog,
            self.buffer,
            self.scans,
            profile,
            self.meter,
            metrics=self.metrics,
        )
        self.metrics.register_source("server", self.server.stats_snapshot)
        self.metrics.register_source("io", self.io_report)
        #: Backend registry: the in-memory server is the default
        #: (``"memory"``); others are created lazily by :meth:`backend`
        #: and seeded with the catalog's schema, data and indexes.
        self._backends: Dict[str, Backend] = {"memory": self.server}

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def backend(self, name: Optional[str] = None) -> Backend:
        """The named statement store (see docs/BACKENDS.md).

        ``None`` defers to the ``REPRO_BACKEND`` environment variable,
        else ``"memory"`` — the in-memory :class:`DatabaseServer` this
        instance was built around.  Other backends (``"sqlite"``) are
        created on first use and seeded with every table, row and index
        the catalog holds at that moment; later DDL and bulk loads
        through *this facade* are mirrored into them, so the same
        workload can run against either store.
        """
        name = resolve_backend_name(name)
        backend = self._backends.get(name)
        if backend is None:
            backend = self._create_backend(name)
            self._backends[name] = backend
            self.metrics.register_source(
                f"backend.{name}", backend.stats_snapshot
            )
        return backend

    def _create_backend(self, name: str) -> Backend:
        from ..backends.sqlite import SqliteBackend

        assert name == "sqlite", name
        backend = SqliteBackend(default_executor=self.server.default_executor)
        for table_name in self.catalog.table_names():
            info = self.catalog.table(table_name)
            heap = info.heap
            backend.mirror_create_table(
                table_name,
                heap.schema,
                rows_per_page=heap.rows_per_page,
                clustered_on=heap.clustered_on,
            )
            rows = [row for _row_id, row in heap.iter_rows()]
            if rows:
                backend.mirror_load(table_name, rows)
            from .index import OrderedIndex

            for index in info.indexes:
                backend.mirror_create_index(
                    index.name,
                    table_name,
                    index.column,
                    ordered=isinstance(index, OrderedIndex),
                    unique=getattr(index, "unique", False),
                )
        return backend

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        *columns: Tuple[str, str],
        not_null: Optional[Sequence[str]] = None,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        clustered_on: Optional[str] = None,
    ) -> None:
        """Create a table: ``db.create_table("part", ("id", "int"), ...)``."""
        schema = schema_of(*columns, not_null=not_null)
        self.catalog.create_table(
            name, schema, rows_per_page=rows_per_page, clustered_on=clustered_on
        )
        self.server.invalidate_plans()
        for backend in self._other_backends():
            backend.mirror_create_table(
                name,
                schema,
                rows_per_page=rows_per_page,
                clustered_on=clustered_on,
            )

    def _other_backends(self):
        """Every live backend except the in-memory server (out-of-band
        DDL and loads through this facade are mirrored into them)."""
        return [
            backend
            for backend_name, backend in self._backends.items()
            if backend_name != "memory"
        ]

    def create_index(
        self,
        index_name: str,
        table: str,
        column: str,
        ordered: bool = False,
        unique: bool = False,
    ) -> None:
        self.catalog.create_index(
            index_name, table, column, ordered=ordered, unique=unique
        )
        self.server.invalidate_plans()
        for backend in self._other_backends():
            backend.mirror_create_index(
                index_name, table, column, ordered=ordered, unique=unique
            )

    def bulk_load(self, table: str, rows: Iterable[Sequence]) -> int:
        """Load rows without charging any simulated latency.

        Used by data generators: the paper's tables pre-exist; loading
        them is not part of any measured experiment.
        """
        info = self.catalog.table(table)
        count = 0
        loaded = []
        mirror = self._other_backends()
        with info.heap.lock.writing():
            for values in rows:
                row = info.heap.schema.coerce_row(values)
                row_id = info.heap.insert(row)
                for index in info.indexes:
                    position = info.heap.schema.position(index.column, table)
                    index.add(row_id, row[position])
                if mirror:
                    loaded.append(row)
                count += 1
        self.disk.grow_extent(table, info.heap.page_count)
        for backend in mirror:
            backend.mirror_load(table, loaded)
        return count

    # ------------------------------------------------------------------
    # cache control (warm / cold experiments)
    # ------------------------------------------------------------------
    def flush_cache(self) -> None:
        """Empty the buffer pool: the next run behaves cold."""
        self.buffer.clear()

    def warm_table(self, table: str) -> None:
        """Mark all pages of ``table`` resident (warm-cache setup)."""
        info = self.catalog.table(table)
        self.buffer.warm(table, info.heap.page_count)
        for index in info.indexes:
            self.buffer.warm(index.io_name, index.page_count)

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def connect(
        self,
        async_workers: int = 10,
        result_cache=None,
        coalesce: bool = False,
        coalesce_window=None,
        trace: bool = False,
        metrics=None,
        executor: Optional[str] = None,
        backend: Optional[str] = None,
    ):
        """Open a client connection (imported lazily to avoid a cycle).

        ``result_cache`` attaches a shared
        :class:`repro.prefetch.cache.ResultCache`; pass the same
        instance to several connections (or to
        :func:`repro.runtime.aio.aio_connect`) to share hits across
        requests and runtimes.  The connection's submission pipeline
        registers the cache with the server, so a write through *any*
        connection — cached, cache-less, or transactional — invalidates
        it.  ``coalesce`` enables set-oriented dispatch (merge
        same-statement submits queued behind the executor into one
        batched server call); ``coalesce_window`` caps the batch size.

        ``trace=True`` enables the database-wide :attr:`tracer` and
        attaches it, so every request through this connection records a
        span tree.  ``metrics`` attaches a
        :class:`~repro.obs.metrics.MetricsRegistry` for per-query
        latency histograms: pass ``True`` for the database-wide
        :attr:`metrics` registry, or a registry instance (benchmarks
        keep a private one per measured variant).  Both default to off
        — the hot path then pays a single ``None`` test.

        ``executor`` picks the execution engine for statements issued
        through this connection: ``"columnar"`` (batch-at-a-time scans
        with late materialization — the default) or ``"row"`` (the
        tuple-at-a-time engine, kept as a correctness oracle).  ``None``
        defers to the server default (the ``REPRO_EXECUTOR``
        environment variable, else columnar).

        ``backend`` picks the statement store behind the connection:
        ``"memory"`` (the simulated in-memory server — the default) or
        ``"sqlite"`` (stdlib ``sqlite3`` behind the same interface; see
        docs/BACKENDS.md).  ``None`` defers to the ``REPRO_BACKEND``
        environment variable, else memory.  Cache, coalescing,
        speculation, tracing and metrics work identically on either.
        """
        from ..client.connection import Connection

        tracer = None
        if trace:
            self.tracer.enable()
            tracer = self.tracer
        if metrics is True:
            metrics = self.metrics
        server = self.backend(backend)
        return Connection(
            server,
            async_workers=async_workers,
            result_cache=result_cache,
            coalesce=coalesce,
            coalesce_window=coalesce_window,
            tracer=tracer,
            metrics=metrics,
            executor=server.resolve_executor(executor),
        )

    def register_cache(self, cache) -> None:
        """Register a standalone :class:`ResultCache` for server-side
        write invalidation without attaching it to a connection.  It
        registers with the *default* backend (``REPRO_BACKEND`` else
        memory) — the store parameterless ``connect()`` calls write
        through."""
        self.backend().register_cache(cache)

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def explain(self, sql: str) -> str:
        """Describe how a SELECT/UPDATE/DELETE would be executed.

        Returns the chosen access path name (``SeqScanOp``,
        ``HashEqOp``, ``ClusteredEqOp``, ``OrderedRangeOp``) — the
        cost-relevant planning decision; useful when tuning workload
        schemas for the benchmarks.
        """
        prepared = self.server.prepare(sql)
        access = getattr(prepared.plan, "access_path", None)
        if access is None:
            access = getattr(prepared.plan, "_access", None)
            access = type(access).__name__ if access is not None else "n/a"
        return f"{type(prepared.plan).__name__}: {access}"

    def reset_stats(self) -> None:
        self.meter.reset()
        self.disk.reset_stats()
        self.buffer.reset_stats()
        self.scans.reset_stats()

    def io_report(self) -> dict:
        """Aggregate IO/latency counters for benchmark reporting."""
        return {
            "latency_totals_s": self.meter.totals(),
            "buffer": {
                "hits": self.buffer.stats.hits,
                "misses": self.buffer.stats.misses,
                "hit_ratio": self.buffer.stats.hit_ratio,
            },
            "disk": {
                "reads": self.disk.stats.reads,
                "sequential": self.disk.stats.sequential_reads,
                "random": self.disk.stats.random_reads,
                "max_queue_depth": self.disk.stats.max_queue_depth,
            },
            "scans": {
                "led": self.scans.stats.led,
                "shared": self.scans.stats.shared,
                "solo": self.scans.stats.solo,
            },
            "server": {
                "executed": self.server.stats.statements_executed,
                "writes": self.server.stats.writes_executed,
                "peak_concurrency": self.server.stats.peak_concurrency,
            },
        }

    def stats_snapshot(self) -> dict:
        """One nested plain dict covering the whole instance: the
        database-wide :attr:`metrics` registry's snapshot (which pulls
        the server and IO sources, plus anything connections with
        ``metrics=True`` registered).  JSON-ready; the ``repro stats``
        command prints exactly this."""
        return self.metrics.snapshot()

    def close(self) -> None:
        for backend in self._backends.values():
            backend.shutdown()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
