"""The database server: statement cache, prepared statements, worker pool.

Every statement execution — synchronous or asynchronous from the
client's perspective — runs on one of ``server_workers`` pool threads.
Submissions beyond the pool size queue up, which is what produces the
thread-count plateau in the paper's Figures 9, 10, 13 and 15: client
threads beyond the server's effective parallelism stop helping.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from ..backends.base import Backend
from .buffer import BufferPool
from .catalog import Catalog
from .errors import ServerShutdownError, StatementHandleError
from .latency import LatencyMeter, LatencyProfile
from .plan import (
    BindingOutcome,
    ExecutionContext,
    Planner,
    QueryResult,
    demuxable,
    execute_batch_select,
)
from .scans import SharedScanManager
from .sql import parse
from .sql.ast_nodes import CreateIndexStmt, CreateTableStmt, Statement, is_write
from .txn import Transaction, TransactionManager


@dataclass
class ServerStats:
    statements_executed: int = 0
    writes_executed: int = 0
    peak_concurrency: int = 0
    statements_prepared: int = 0
    #: Set-oriented batch calls that took the demux path (one statement
    #: execution answered the whole batch).
    batched_calls: int = 0
    #: Total binding sets answered by those demuxed calls.
    batched_bindings: int = 0
    #: Per-statement passes the demux path avoided: each batched call
    #: pays one scan/statement instead of one per binding.
    scans_saved: int = 0
    #: Prepared statements swept from the bounded plan cache (LRU).
    evictions: int = 0


class PreparedStatement:
    """Server-side prepared statement (parse + plan done once).

    ``origin`` is the backend that prepared it: the submission pipeline
    re-prepares a statement handed to a connection on a *different*
    backend, and the dispatch coalescer keys batches by it so coalesced
    reads never execute against the wrong store.
    """

    __slots__ = ("statement_id", "sql", "ast", "plan", "catalog_version", "origin")

    def __init__(
        self,
        statement_id: int,
        sql: str,
        ast: Statement,
        plan,
        version: int,
        origin=None,
    ) -> None:
        self.statement_id = statement_id
        self.sql = sql
        self.ast = ast
        self.plan = plan
        self.catalog_version = version
        self.origin = origin


class DatabaseServer(Backend):
    """Executes SQL against one catalog with simulated costs.

    This is the default (``"memory"``) :class:`repro.backends.base.Backend`
    — and, because every cost is simulated and every semantic choice is
    spelled out in the engine, the differential-test *oracle* other
    backends are diffed against."""

    backend_name = "memory"

    #: Default cap on the prepared-statement cache.  Generous: a real
    #: application's distinct statement texts number in the hundreds;
    #: the cap exists so a query-text generator (or an ORM emitting
    #: literals) cannot grow server memory without bound.
    DEFAULT_MAX_PREPARED = 512

    #: Selectivity histogram buckets (fraction of a batch's candidate
    #: rows surviving the filter).
    SELECTIVITY_BOUNDS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 0.75, 0.9, 1.0)

    def __init__(
        self,
        catalog: Catalog,
        buffer: BufferPool,
        scans: SharedScanManager,
        profile: LatencyProfile,
        meter: LatencyMeter,
        max_prepared: int = DEFAULT_MAX_PREPARED,
        metrics=None,
        default_executor: Optional[str] = None,
    ) -> None:
        if max_prepared < 1:
            raise ValueError(f"max_prepared must be >= 1, got {max_prepared}")
        super().__init__(default_executor=default_executor)
        #: Scan instruments in the database-wide metrics registry (the
        #: per-batch counters the columnar executor reports).  None when
        #: the database attached no registry.
        self._scan_batches = self._scan_rows = self._scan_selectivity = None
        if metrics is not None:
            self._scan_batches = metrics.counter("scan.batches")
            self._scan_rows = metrics.counter("scan.rows_scanned")
            self._scan_selectivity = metrics.histogram(
                "scan.selectivity", bounds=self.SELECTIVITY_BOUNDS
            )
        self._catalog = catalog
        self._buffer = buffer
        self._scans = scans
        self._profile = profile
        self._meter = meter
        self._planner = Planner(catalog)
        self._pool = ThreadPoolExecutor(
            max_workers=profile.server_workers,
            thread_name_prefix=f"dbworker-{profile.name}",
        )
        self._lock = threading.Lock()
        self.max_prepared = max_prepared
        self._prepared: Dict[int, PreparedStatement] = {}
        self._plan_cache: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        self._statement_ids = itertools.count(1)
        self._catalog_version = 0
        self._active = 0
        self._shutdown = False
        self.stats = ServerStats()
        self.txns = TransactionManager(catalog)
        self.txns.invalidation_hook = self.broadcast_invalidation
        self.txns.data_change_hook = self.note_data_change
        self.txns.release_hook = self.clear_uncommitted

    # ------------------------------------------------------------------
    # preparation
    # ------------------------------------------------------------------
    @property
    def profile(self) -> LatencyProfile:
        return self._profile

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def meter(self) -> LatencyMeter:
        return self._meter

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse and plan ``sql``, caching by text.

        The cache is a bounded LRU (``max_prepared``): preparing past
        the cap sweeps the least-recently-used entries and counts an
        eviction.  Eviction never invalidates a handed-out
        :class:`PreparedStatement` — the object carries its own plan, so
        ``submit_prepared`` keeps working on a swept statement; only a
        later ``prepare`` of the same text pays a re-plan.
        """
        with self._lock:
            cached = self._plan_cache.get(sql)
            if cached is not None and cached.catalog_version == self._catalog_version:
                self._plan_cache.move_to_end(sql)
                return cached
        ast = parse(sql)
        plan = self._planner.plan(ast)
        with self._lock:
            previous = self._plan_cache.get(sql)
            if previous is not None:
                if previous.catalog_version == self._catalog_version:
                    # A concurrent prepare of the same text won the
                    # race while we were planning: keep its entry (and
                    # its already handed-out statement_id), drop ours.
                    self._plan_cache.move_to_end(sql)
                    return previous
                # Stale (catalog changed): the replaced entry's id slot
                # goes with it; the old object stays usable by holders.
                self._prepared.pop(previous.statement_id, None)
            prepared = PreparedStatement(
                next(self._statement_ids),
                sql,
                ast,
                plan,
                self._catalog_version,
                origin=self,
            )
            self._prepared[prepared.statement_id] = prepared
            self._plan_cache[sql] = prepared
            self._plan_cache.move_to_end(sql)
            self.stats.statements_prepared += 1
            while len(self._plan_cache) > self.max_prepared:
                _sql, evicted = self._plan_cache.popitem(last=False)
                self._prepared.pop(evicted.statement_id, None)
                self.stats.evictions += 1
        return prepared

    def prepared(self, statement_id: int) -> PreparedStatement:
        with self._lock:
            try:
                return self._prepared[statement_id]
            except KeyError:
                raise StatementHandleError(
                    f"unknown prepared statement id {statement_id}"
                ) from None

    # ------------------------------------------------------------------
    # execution
    #
    # (The result-cache registry, write-versioning and uncommitted-write
    # marks — the cache-consistency bookkeeping the submission pipeline
    # reads — are inherited from Backend's CacheInvalidationLedger; this
    # server drives them from its write path below.)
    # ------------------------------------------------------------------
    def submit(
        self,
        sql: str,
        params: Sequence = (),
        txn: Optional[Transaction] = None,
        executor: Optional[str] = None,
    ) -> "Future[QueryResult]":
        """Queue a statement for execution; returns a Future."""
        executor = self.resolve_executor(executor)
        with self._lock:
            if self._shutdown:
                raise ServerShutdownError("server is shut down")
        return self._pool.submit(
            self._run_sql, sql, tuple(params), txn, executor
        )

    def submit_prepared(
        self,
        prepared: PreparedStatement,
        params: Sequence = (),
        txn: Optional[Transaction] = None,
        span=None,
        executor: Optional[str] = None,
    ) -> "Future[QueryResult]":
        """Queue a prepared statement; ``span`` (the client's dispatch
        span, when tracing) parents the worker's ``server.execute``.
        ``executor`` picks the engine ("row"/"columnar"; None = server
        default)."""
        executor = self.resolve_executor(executor)
        with self._lock:
            if self._shutdown:
                raise ServerShutdownError("server is shut down")
        return self._pool.submit(
            self._run_prepared, prepared, tuple(params), txn, span, executor
        )

    def submit_prepared_batch(
        self,
        prepared: PreparedStatement,
        bindings: Sequence[Sequence],
        txn: Optional[Transaction] = None,
        span=None,
        executor: Optional[str] = None,
    ) -> "Future[List[BindingOutcome]]":
        """Set-oriented execution: one statement over N binding sets.

        For a demuxable plan (any SELECT) the whole batch is answered by
        a *single* statement execution — one lock acquisition, one fixed
        CPU charge, one scan (or one index probe per distinct binding) —
        via the binding-demultiplex operator
        (:mod:`repro.db.plan.demux`); ``ServerStats`` counts it under
        ``batched_calls`` / ``batched_bindings`` / ``scans_saved``.
        Non-demuxable statements (writes, DDL) fall back to per-binding
        execution with full per-statement semantics, including write
        invalidation broadcasts.

        The future resolves to one outcome per binding, in order: the
        binding's :class:`QueryResult`, or the exception that binding
        raised — a bad binding faults only its own slot, never the
        batch.  No network charge is made here; the client (or the
        dispatch coalescer) pays one round trip for the whole batch.
        """
        executor = self.resolve_executor(executor)
        with self._lock:
            if self._shutdown:
                raise ServerShutdownError("server is shut down")
        snapshot = [tuple(binding) for binding in bindings]
        return self._pool.submit(
            self._run_prepared_batch, prepared, snapshot, txn, span, executor
        )

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin_transaction(self) -> Transaction:
        """Start an explicit transaction (strict 2PL; see repro.db.txn)."""
        with self._lock:
            if self._shutdown:
                raise ServerShutdownError("server is shut down")
        return self.txns.begin()

    def _run_sql(
        self,
        sql: str,
        params: tuple,
        txn: Optional[Transaction] = None,
        executor: Optional[str] = None,
    ) -> QueryResult:
        return self._run_prepared(self.prepare(sql), params, txn, executor=executor)

    def _run_prepared(
        self,
        prepared: PreparedStatement,
        params: tuple,
        txn: Optional[Transaction] = None,
        span=None,
        executor: Optional[str] = None,
    ) -> QueryResult:
        exec_span = (
            span.child(
                "server.execute", statement_id=prepared.statement_id
            )
            if span is not None
            else None
        )
        try:
            return self._execute_prepared(
                prepared, params, txn, exec_span, executor
            )
        except BaseException as exc:
            if exec_span is not None:
                exec_span.set("error", repr(exc))
            raise
        finally:
            if exec_span is not None:
                exec_span.end()

    def _execute_prepared(
        self,
        prepared: PreparedStatement,
        params: tuple,
        txn: Optional[Transaction],
        exec_span=None,
        executor: Optional[str] = None,
    ) -> QueryResult:
        executor = self.resolve_executor(executor)
        with self._lock:
            stale = prepared.catalog_version != self._catalog_version
        if stale:
            prepared = self.prepare(prepared.sql)
        if txn is not None:
            self._lock_for_txn(txn, prepared.ast)
        write = is_write(prepared.ast)
        table = getattr(prepared.ast, "table", None) if write else None
        if write:
            # Cache bookkeeping BEFORE the mutation runs: non-txn reads
            # take no table locks, so a concurrent cached read could
            # otherwise observe the new data in the window before the
            # mark/bump and retain it past a rollback.  Mark-then-bump
            # pairs with the reader's token-then-check order: a write
            # landing between the reader's two steps is caught by one
            # or the other, never missed by both.
            if txn is not None and txn.note_write(table):
                self.mark_uncommitted(table)
            self.note_data_change(table)
        with self._lock:
            self._active += 1
            if self._active > self.stats.peak_concurrency:
                self.stats.peak_concurrency = self._active
        try:
            ctx = ExecutionContext(
                catalog=self._catalog,
                buffer=self._buffer,
                scans=self._scans,
                profile=self._profile,
                meter=self._meter,
                params=params,
                txn=txn,
                executor=executor,
            )
            result = prepared.plan.execute(ctx)
            ctx.flush_cpu()
            self._note_scan_metrics(ctx)
            if exec_span is not None:
                exec_span.set("write", write)
                exec_span.set("executor", executor)
                if ctx.scan_batches:
                    exec_span.set("scan_batches", ctx.scan_batches)
                rows = getattr(result, "rowcount", None)
                if rows is not None:
                    exec_span.set("rows", rows)
            with self._lock:
                self.stats.statements_executed += 1
                if write:
                    self.stats.writes_executed += 1
                    self._invalidate_if_ddl(prepared.ast)
            if write and txn is None:
                # Server-side invalidation: the write path is the one
                # place every mutation passes through, so caches stay
                # correct no matter which connection wrote.  Inside a
                # transaction the broadcast is deferred to commit (a
                # rolled-back write never invalidates); the pre-execute
                # version bump and uncommitted mark keep reads that
                # overlap the open write window out of the cache.
                self.broadcast_invalidation(table)
            return result
        finally:
            with self._lock:
                self._active -= 1

    def _run_prepared_batch(
        self,
        prepared: PreparedStatement,
        bindings: List[tuple],
        txn: Optional[Transaction] = None,
        span=None,
        executor: Optional[str] = None,
    ) -> List[BindingOutcome]:
        if not bindings:
            return []
        executor = self.resolve_executor(executor)
        with self._lock:
            stale = prepared.catalog_version != self._catalog_version
        if stale:
            prepared = self.prepare(prepared.sql)
        if not demuxable(prepared.plan):
            # Per-binding fallback: each binding keeps the exact
            # single-statement semantics (stats, locks, invalidation
            # broadcasts, undo recording) — only the transport batched.
            # Each binding hangs its own server.execute span under the
            # batch's dispatch span.
            outcomes: List[BindingOutcome] = []
            for binding in bindings:
                try:
                    outcomes.append(
                        self._run_prepared(prepared, binding, txn, span, executor)
                    )
                except Exception as exc:
                    outcomes.append(exc)
            return outcomes
        exec_span = (
            span.child(
                "server.execute",
                statement_id=prepared.statement_id,
                demux=True,
                bindings=len(bindings),
            )
            if span is not None
            else None
        )
        if txn is not None:
            self._lock_for_txn(txn, prepared.ast)
        with self._lock:
            self._active += 1
            if self._active > self.stats.peak_concurrency:
                self.stats.peak_concurrency = self._active
        try:
            ctx = ExecutionContext(
                catalog=self._catalog,
                buffer=self._buffer,
                scans=self._scans,
                profile=self._profile,
                meter=self._meter,
                params=(),
                txn=txn,
                executor=executor,
            )
            outcomes = execute_batch_select(
                prepared.plan, ctx, bindings, span=exec_span
            )
            ctx.flush_cpu()
            self._note_scan_metrics(ctx)
            if exec_span is not None and ctx.scan_batches:
                exec_span.set("scan_batches", ctx.scan_batches)
            with self._lock:
                self.stats.statements_executed += 1
                self.stats.batched_calls += 1
                self.stats.batched_bindings += len(bindings)
                self.stats.scans_saved += len(bindings) - 1
            return outcomes
        except BaseException as exc:
            if exec_span is not None:
                exec_span.set("error", repr(exc))
            raise
        finally:
            if exec_span is not None:
                exec_span.end()
            with self._lock:
                self._active -= 1

    def _note_scan_metrics(self, ctx: ExecutionContext) -> None:
        """Fold one statement's per-batch scan accounting into the
        database-wide metrics registry (no-op without one, or when the
        statement ran row-at-a-time and produced no batches)."""
        if self._scan_batches is None or not ctx.scan_batches:
            return
        self._scan_batches.inc(ctx.scan_batches)
        self._scan_rows.inc(ctx.scan_rows)
        for selectivity in ctx.scan_selectivities:
            self._scan_selectivity.observe(selectivity)

    def _lock_for_txn(self, txn: Transaction, ast: Statement) -> None:
        """Acquire the statement's table lock under strict 2PL."""
        from .errors import TransactionStateError

        if isinstance(ast, (CreateTableStmt, CreateIndexStmt)):
            raise TransactionStateError(
                "DDL inside an explicit transaction is not supported"
            )
        table = getattr(ast, "table", None)
        if table is not None:
            self.txns.lock_for_statement(txn, table, write=is_write(ast))

    def _invalidate_if_ddl(self, ast: Statement) -> None:
        if isinstance(ast, (CreateTableStmt, CreateIndexStmt)):
            self._catalog_version += 1

    def invalidate_plans(self) -> None:
        """Force re-planning (called after out-of-band DDL)."""
        with self._lock:
            self._catalog_version += 1
        # Out-of-band DDL changes schema underneath every cached result.
        self.broadcast_invalidation(None)

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, object]:
        """Every server counter as one plain dict (taken under the
        server lock, so batched_* never tears against scans_saved)."""
        with self._lock:
            snap = dict(asdict(self.stats))
            snap["prepared_cached"] = len(self._plan_cache)
            snap["registered_caches"] = self.ledger.cache_count
            snap["active"] = self._active
        return snap

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shutdown = True
        self._pool.shutdown(wait=wait)

    @property
    def is_shutdown(self) -> bool:
        with self._lock:
            return self._shutdown
