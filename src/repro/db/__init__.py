"""Embedded simulated database engine.

This package is the substrate standing in for the paper's SYS1 /
PostgreSQL servers: a multi-threaded SQL engine whose latency model
(network round trips, disk seeks, buffer cache, bounded worker pool,
shared scans, elevator IO) reproduces the performance phenomena the
program transformations exploit.  See DESIGN.md §2 for the substitution
rationale.
"""

from .buffer import BufferPool
from .catalog import Catalog
from .database import Database
from .disk import SimulatedDisk
from .errors import (
    CatalogError,
    ConstraintError,
    DatabaseError,
    ParamCountError,
    PlanError,
    ServerShutdownError,
    SqlSyntaxError,
    TransactionError,
    TransactionStateError,
    TransactionTimeoutError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)
from .latency import INSTANT, POSTGRES, PROFILES, SYS1, LatencyMeter, LatencyProfile
from .plan import QueryResult
from .scans import SharedScanManager
from .server import DatabaseServer, PreparedStatement
from .storage import HeapTable
from .txn import Transaction, TransactionManager, UndoEntry
from .types import Column, ColumnType, Row, Schema, schema_of

__all__ = [
    "BufferPool",
    "Catalog",
    "Database",
    "SimulatedDisk",
    "CatalogError",
    "ConstraintError",
    "DatabaseError",
    "ParamCountError",
    "PlanError",
    "ServerShutdownError",
    "SqlSyntaxError",
    "TransactionError",
    "TransactionStateError",
    "TransactionTimeoutError",
    "Transaction",
    "TransactionManager",
    "UndoEntry",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownTableError",
    "INSTANT",
    "POSTGRES",
    "PROFILES",
    "SYS1",
    "LatencyMeter",
    "LatencyProfile",
    "QueryResult",
    "SharedScanManager",
    "DatabaseServer",
    "PreparedStatement",
    "HeapTable",
    "Column",
    "ColumnType",
    "Row",
    "Schema",
    "schema_of",
]
