"""AST node definitions for the SQL subset.

Nodes are frozen dataclasses so parsed statements can be cached and
shared between server worker threads without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


class Expr:
    """Marker base class for expressions."""

    def param_count(self) -> int:
        """Number of ``?`` markers in this subtree."""
        return 0


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclass(frozen=True)
class Param(Expr):
    """A positional ``?`` parameter (0-based index in statement order)."""

    index: int

    def param_count(self) -> int:
        return 1


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str


@dataclass(frozen=True)
class Star(Expr):
    """``*`` in ``SELECT *`` or ``count(*)``."""


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Comparison or arithmetic: =, <>, <, <=, >, >=, +, -, /, %, *."""

    op: str
    left: Expr
    right: Expr

    def param_count(self) -> int:
        return self.left.param_count() + self.right.param_count()


@dataclass(frozen=True)
class LogicalOp(Expr):
    """AND / OR over two operands."""

    op: str  # "and" | "or"
    left: Expr
    right: Expr

    def param_count(self) -> int:
        return self.left.param_count() + self.right.param_count()


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr

    def param_count(self) -> int:
        return self.operand.param_count()


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def param_count(self) -> int:
        return self.operand.param_count()


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False

    def param_count(self) -> int:
        return self.operand.param_count() + sum(
            item.param_count() for item in self.items
        )


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def param_count(self) -> int:
        return (
            self.operand.param_count()
            + self.low.param_count()
            + self.high.param_count()
        )


@dataclass(frozen=True)
class Aggregate(Expr):
    """``count|sum|min|max|avg ( [distinct] expr | * )``."""

    func: str
    argument: Expr  # Star for count(*)
    distinct: bool = False

    def param_count(self) -> int:
        return self.argument.param_count()


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------


class Statement:
    """Marker base class for statements."""


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class SelectStmt(Statement):
    items: Tuple[SelectItem, ...]
    table: str
    where: Optional[Expr] = None
    group_by: Tuple[str, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[Expr] = None
    distinct: bool = False
    param_count: int = 0

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(item.expr, Aggregate) for item in self.items)


@dataclass(frozen=True)
class InsertStmt(Statement):
    table: str
    columns: Tuple[str, ...]  # empty = full schema order
    values: Tuple[Expr, ...]
    param_count: int = 0


@dataclass(frozen=True)
class UpdateStmt(Statement):
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None
    param_count: int = 0


@dataclass(frozen=True)
class DeleteStmt(Statement):
    table: str
    where: Optional[Expr] = None
    param_count: int = 0


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False


@dataclass(frozen=True)
class CreateTableStmt(Statement):
    table: str
    columns: Tuple[ColumnDef, ...]
    if_not_exists: bool = False
    param_count: int = 0


@dataclass(frozen=True)
class CreateIndexStmt(Statement):
    index: str
    table: str
    column: str
    unique: bool = False
    ordered: bool = False
    clustered: bool = False
    param_count: int = 0


def is_write(statement: Statement) -> bool:
    """True for statements that modify database state."""
    return isinstance(
        statement,
        (InsertStmt, UpdateStmt, DeleteStmt, CreateTableStmt, CreateIndexStmt),
    )
