"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    statement   := select | insert | update | delete | create_table
                 | create_index
    select      := SELECT [DISTINCT] items FROM ident [WHERE expr]
                   [ORDER BY order_items] [LIMIT term]
    items       := * | item ("," item)*
    item        := expr [AS ident]
    insert      := INSERT INTO ident ["(" idents ")"] VALUES "(" exprs ")"
    update      := UPDATE ident SET assigns [WHERE expr]
    delete      := DELETE FROM ident [WHERE expr]
    create_table:= CREATE TABLE [IF NOT EXISTS] ident "(" coldefs ")"
    create_index:= CREATE [UNIQUE] [ORDERED|CLUSTERED] INDEX ident
                   ON ident "(" ident ")"

    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := sum (comparison sum | IS [NOT] NULL
                   | [NOT] IN "(" exprs ")" | [NOT] BETWEEN sum AND sum)?
    sum         := product (("+"|"-") product)*
    product     := atom (("*"|"/"|"%") atom)*
    atom        := literal | "?" | ident | agg "(" [DISTINCT] (expr|*) ")"
                 | "(" expr ")" | "-" atom

Parameters are numbered left to right in source order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SqlSyntaxError
from .ast_nodes import (
    Aggregate,
    Between,
    BinaryOp,
    ColumnDef,
    ColumnRef,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    Expr,
    InList,
    InsertStmt,
    IsNull,
    Literal,
    LogicalOp,
    NotOp,
    OrderItem,
    Param,
    SelectItem,
    SelectStmt,
    Star,
    Statement,
    UpdateStmt,
)
from .lexer import Token, TokenType, tokenize

_AGG_FUNCS = {"count", "sum", "min", "max", "avg"}
_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}


def parse(sql: str) -> Statement:
    """Parse one SQL statement; trailing garbage is an error."""
    parser = _Parser(tokenize(sql), sql)
    statement = parser.statement()
    parser.expect_eof()
    return statement


class _Parser:
    def __init__(self, tokens: List[Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._pos = 0
        self._param_counter = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        return SqlSyntaxError(
            f"{message} (near {token.value!r} at {token.position})",
            token.position,
        )

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word.upper()}")

    def _accept(self, token_type: TokenType) -> Optional[Token]:
        if self._peek().type is token_type:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType) -> Token:
        token = self._accept(token_type)
        if token is None:
            raise self._error(f"expected {token_type.value}")
        return token

    def _ident(self) -> str:
        token = self._peek()
        # Allow non-reserved keywords (e.g. a column named "count") as
        # identifiers when they can't start an expression keyword here.
        if token.type is TokenType.IDENT:
            self._advance()
            return token.value
        raise self._error("expected identifier")

    def expect_eof(self) -> None:
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def statement(self) -> Statement:
        token = self._peek()
        if token.is_keyword("select"):
            return self._select()
        if token.is_keyword("insert"):
            return self._insert()
        if token.is_keyword("update"):
            return self._update()
        if token.is_keyword("delete"):
            return self._delete()
        if token.is_keyword("create"):
            return self._create()
        raise self._error("expected a statement")

    def _select(self) -> SelectStmt:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = self._select_items()
        self._expect_keyword("from")
        table = self._ident()
        where = None
        if self._accept_keyword("where"):
            where = self.expression()
        group_by: Tuple[str, ...] = ()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            names = [self._ident()]
            while self._accept(TokenType.COMMA):
                names.append(self._ident())
            group_by = tuple(names)
        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = self._order_items()
        limit = None
        if self._accept_keyword("limit"):
            limit = self._atom()
        return SelectStmt(
            items=items,
            table=table,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            param_count=self._param_counter,
        )

    def _select_items(self) -> Tuple[SelectItem, ...]:
        if self._accept(TokenType.STAR):
            return (SelectItem(Star()),)
        items = [self._select_item()]
        while self._accept(TokenType.COMMA):
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> SelectItem:
        expr = self.expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._ident()
        return SelectItem(expr, alias)

    def _order_items(self) -> Tuple[OrderItem, ...]:
        items = [self._order_item()]
        while self._accept(TokenType.COMMA):
            items.append(self._order_item())
        return tuple(items)

    def _order_item(self) -> OrderItem:
        column = self._ident()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(column, descending)

    def _insert(self) -> InsertStmt:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._ident()
        columns: Tuple[str, ...] = ()
        if self._accept(TokenType.LPAREN):
            names = [self._ident()]
            while self._accept(TokenType.COMMA):
                names.append(self._ident())
            self._expect(TokenType.RPAREN)
            columns = tuple(names)
        self._expect_keyword("values")
        self._expect(TokenType.LPAREN)
        values = [self.expression()]
        while self._accept(TokenType.COMMA):
            values.append(self.expression())
        self._expect(TokenType.RPAREN)
        return InsertStmt(
            table=table,
            columns=columns,
            values=tuple(values),
            param_count=self._param_counter,
        )

    def _update(self) -> UpdateStmt:
        self._expect_keyword("update")
        table = self._ident()
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._accept(TokenType.COMMA):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("where"):
            where = self.expression()
        return UpdateStmt(
            table=table,
            assignments=tuple(assignments),
            where=where,
            param_count=self._param_counter,
        )

    def _assignment(self) -> Tuple[str, Expr]:
        column = self._ident()
        token = self._peek()
        if token.type is not TokenType.OP or token.value != "=":
            raise self._error("expected '=' in assignment")
        self._advance()
        return column, self.expression()

    def _delete(self) -> DeleteStmt:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._ident()
        where = None
        if self._accept_keyword("where"):
            where = self.expression()
        return DeleteStmt(table=table, where=where, param_count=self._param_counter)

    def _create(self) -> Statement:
        self._expect_keyword("create")
        unique = self._accept_keyword("unique")
        ordered = self._accept_keyword("ordered")
        clustered = False
        if not ordered:
            clustered = self._accept_keyword("clustered")
        if self._accept_keyword("table"):
            if unique or ordered or clustered:
                raise self._error("UNIQUE/ORDERED apply to indexes only")
            return self._create_table()
        self._expect_keyword("index")
        index = self._ident()
        self._expect_keyword("on")
        table = self._ident()
        self._expect(TokenType.LPAREN)
        column = self._ident()
        self._expect(TokenType.RPAREN)
        return CreateIndexStmt(
            index=index,
            table=table,
            column=column,
            unique=unique,
            ordered=ordered,
            clustered=clustered,
        )

    def _create_table(self) -> CreateTableStmt:
        if_not_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("not")
            self._expect_keyword("exists")
            if_not_exists = True
        table = self._ident()
        self._expect(TokenType.LPAREN)
        columns = [self._column_def()]
        while self._accept(TokenType.COMMA):
            columns.append(self._column_def())
        self._expect(TokenType.RPAREN)
        return CreateTableStmt(
            table=table, columns=tuple(columns), if_not_exists=if_not_exists
        )

    def _column_def(self) -> ColumnDef:
        name = self._ident()
        token = self._peek()
        if token.type is TokenType.IDENT:
            type_name = self._advance().value
        else:
            raise self._error("expected column type")
        not_null = False
        if self._accept_keyword("not"):
            self._expect_keyword("null")
            not_null = True
        return ColumnDef(name=name, type_name=type_name, not_null=not_null)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = LogicalOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = LogicalOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept_keyword("not"):
            return NotOp(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._sum()
        token = self._peek()
        if token.type is TokenType.OP and token.value in _COMPARISONS:
            op = self._advance().value
            return BinaryOp(op, left, self._sum())
        if token.is_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated)
        negated = False
        if token.is_keyword("not"):
            # lookahead for NOT IN / NOT BETWEEN
            following = self._tokens[self._pos + 1]
            if following.is_keyword("in") or following.is_keyword("between"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("in"):
            self._advance()
            self._expect(TokenType.LPAREN)
            items = [self.expression()]
            while self._accept(TokenType.COMMA):
                items.append(self.expression())
            self._expect(TokenType.RPAREN)
            return InList(left, tuple(items), negated)
        if token.is_keyword("between"):
            self._advance()
            low = self._sum()
            self._expect_keyword("and")
            high = self._sum()
            return Between(left, low, high, negated)
        return left

    def _sum(self) -> Expr:
        left = self._product()
        while True:
            token = self._peek()
            if token.type is TokenType.OP and token.value in ("+", "-"):
                op = self._advance().value
                left = BinaryOp(op, left, self._product())
            else:
                return left

    def _product(self) -> Expr:
        left = self._atom()
        while True:
            token = self._peek()
            if token.type is TokenType.STAR:
                self._advance()
                left = BinaryOp("*", left, self._atom())
            elif token.type is TokenType.OP and token.value in ("/", "%"):
                op = self._advance().value
                left = BinaryOp(op, left, self._atom())
            else:
                return left

    def _atom(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.PARAM:
            self._advance()
            param = Param(self._param_counter)
            self._param_counter += 1
            return param
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.type is TokenType.KEYWORD and token.value in _AGG_FUNCS:
            return self._aggregate()
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self.expression()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.OP and token.value == "-":
            self._advance()
            operand = self._atom()
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ):
                return Literal(-operand.value)
            return BinaryOp("-", Literal(0), operand)
        if token.type is TokenType.IDENT:
            self._advance()
            return ColumnRef(token.value)
        raise self._error("expected an expression")

    def _aggregate(self) -> Expr:
        func = self._advance().value
        self._expect(TokenType.LPAREN)
        distinct = self._accept_keyword("distinct")
        if self._accept(TokenType.STAR):
            argument: Expr = Star()
        else:
            argument = self.expression()
        self._expect(TokenType.RPAREN)
        if func == "count" and isinstance(argument, Star) and distinct:
            raise self._error("COUNT(DISTINCT *) is not supported")
        if func != "count" and isinstance(argument, Star):
            raise self._error(f"{func.upper()}(*) is not supported")
        return Aggregate(func, argument, distinct)
