"""SQL subset front end: lexer, AST and parser.

The grammar covers what the paper's five workloads and the TPC-H-like
category/part schema need: single-table SELECT with aggregates, WHERE
conjunctions/disjunctions, ORDER BY, LIMIT, and the DML/DDL statements
INSERT, UPDATE, DELETE, CREATE TABLE and CREATE INDEX, all with ``?``
positional parameters.
"""

from .ast_nodes import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    InsertStmt,
    Literal,
    LogicalOp,
    NotOp,
    OrderItem,
    Param,
    SelectItem,
    SelectStmt,
    Star,
    Statement,
    UpdateStmt,
)
from .lexer import Token, TokenType, tokenize
from .parser import parse

__all__ = [
    "Aggregate",
    "BinaryOp",
    "ColumnRef",
    "CreateIndexStmt",
    "CreateTableStmt",
    "DeleteStmt",
    "InsertStmt",
    "Literal",
    "LogicalOp",
    "NotOp",
    "OrderItem",
    "Param",
    "SelectItem",
    "SelectStmt",
    "Star",
    "Statement",
    "UpdateStmt",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
]
