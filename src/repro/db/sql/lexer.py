"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List

from ..errors import SqlSyntaxError

KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "order", "by", "asc",
    "desc", "limit", "insert", "into", "values", "update", "set", "delete",
    "create", "table", "index", "on", "as", "is", "null", "in", "between",
    "distinct", "unique", "ordered", "count", "sum", "min", "max", "avg",
    "group",
    "true", "false", "if", "exists", "clustered",
}


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PARAM = "param"
    OP = "op"
    COMMA = ","
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"
    DOT = "."
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


_OPERATOR_STARTS = "<>=!+-/%"
_TWO_CHAR_OPS = {"<=", ">=", "<>", "!="}


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` with position."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    index = 0
    length = len(sql)
    while index < length:
        ch = sql[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "-" and sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if ch == "?":
            yield Token(TokenType.PARAM, "?", index)
            index += 1
            continue
        if ch == ",":
            yield Token(TokenType.COMMA, ",", index)
            index += 1
            continue
        if ch == "(":
            yield Token(TokenType.LPAREN, "(", index)
            index += 1
            continue
        if ch == ")":
            yield Token(TokenType.RPAREN, ")", index)
            index += 1
            continue
        if ch == "*":
            yield Token(TokenType.STAR, "*", index)
            index += 1
            continue
        if ch == "'":
            end = index + 1
            chunks = []
            while True:
                if end >= length:
                    raise SqlSyntaxError("unterminated string literal", index)
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        chunks.append("'")
                        end += 2
                        continue
                    break
                chunks.append(sql[end])
                end += 1
            yield Token(TokenType.STRING, "".join(chunks), index)
            index = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and index + 1 < length and sql[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            yield Token(TokenType.NUMBER, sql[index:end], index)
            index = end
            continue
        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                yield Token(TokenType.KEYWORD, lowered, index)
            else:
                yield Token(TokenType.IDENT, word, index)
            index = end
            continue
        if ch in _OPERATOR_STARTS:
            two = sql[index : index + 2]
            if two in _TWO_CHAR_OPS:
                yield Token(TokenType.OP, "<>" if two == "!=" else two, index)
                index += 2
                continue
            if ch == "!":
                raise SqlSyntaxError(f"unexpected character {ch!r}", index)
            yield Token(TokenType.OP, ch, index)
            index += 1
            continue
        if ch == ".":
            yield Token(TokenType.DOT, ".", index)
            index += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", index)
    yield Token(TokenType.EOF, "", length)
