"""Column types, schemas and row representation.

Rows are plain tuples; a :class:`Schema` maps column names to positions.
Tuples keep the hot row path allocation-light, which matters because the
benchmark workloads scan hundreds of thousands of rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Optional, Sequence, Tuple

from .errors import TypeMismatchError, UnknownColumnError

Row = Tuple[Any, ...]


class ColumnType(Enum):
    """Supported column types for the SQL subset."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    @classmethod
    def from_name(cls, name: str) -> "ColumnType":
        normalized = name.strip().lower()
        aliases = {
            "int": cls.INT,
            "integer": cls.INT,
            "bigint": cls.INT,
            "float": cls.FLOAT,
            "double": cls.FLOAT,
            "real": cls.FLOAT,
            "text": cls.TEXT,
            "varchar": cls.TEXT,
            "char": cls.TEXT,
            "string": cls.TEXT,
            "bool": cls.BOOL,
            "boolean": cls.BOOL,
        }
        if normalized not in aliases:
            raise TypeMismatchError(f"unknown column type: {name!r}")
        return aliases[normalized]


def coerce_value(value: Any, column_type: ColumnType) -> Any:
    """Coerce ``value`` to ``column_type``, raising on lossy conversions.

    ``None`` is always allowed (SQL NULL).
    """
    if value is None:
        return None
    try:
        if column_type is ColumnType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                return int(value)
        elif column_type is ColumnType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value)
        elif column_type is ColumnType.TEXT:
            if isinstance(value, str):
                return value
            if isinstance(value, (int, float)):
                return str(value)
        elif column_type is ColumnType.BOOL:
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {column_type.value}"
        ) from exc
    raise TypeMismatchError(f"cannot coerce {value!r} to {column_type.value}")


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType
    nullable: bool = True

    def coerce(self, value: Any) -> Any:
        if value is None and not self.nullable:
            raise TypeMismatchError(f"column {self.name!r} is NOT NULL")
        return coerce_value(value, self.type)


@dataclass
class Schema:
    """An ordered collection of columns with O(1) name lookup."""

    columns: Sequence[Column]
    _index: dict = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._index = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise TypeMismatchError(f"duplicate column name: {column.name!r}")
            self._index[column.name] = position

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def position(self, name: str, table: str = "") -> int:
        """Return the tuple position of column ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(name, table) from None

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    def names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def coerce_row(self, values: Iterable[Any]) -> Row:
        """Coerce an iterable of values into a typed row tuple."""
        values = tuple(values)
        if len(values) != len(self.columns):
            raise TypeMismatchError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        return tuple(
            column.coerce(value) for column, value in zip(self.columns, values)
        )

    def project_positions(self, names: Sequence[str], table: str = "") -> Tuple[int, ...]:
        return tuple(self.position(name, table) for name in names)


def schema_of(*pairs: Tuple[str, str], not_null: Optional[Sequence[str]] = None) -> Schema:
    """Convenience constructor: ``schema_of(("id", "int"), ("name", "text"))``."""
    required = set(not_null or ())
    columns = [
        Column(name, ColumnType.from_name(type_name), nullable=name not in required)
        for name, type_name in pairs
    ]
    return Schema(columns)
