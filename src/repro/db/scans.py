"""Shared table scans.

When several queries need a full scan of the same table at the same
time, the engine elects one *leader* that performs the page IO while the
other scanners (followers) wait and reuse the leader's pass — the
"shared scans" server technique the paper cites as reason (c) that
concurrent submission helps.  A synchronous client can never have two
scans in flight, so it never benefits; the transformed programs do.

The manager tracks scan *generations* per table so a follower that
arrives after a leader finished does not piggyback on stale work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Tuple

#: Rows per column batch the vectorized executor works on.  Large enough
#: that the per-batch Python overhead (one comprehension per predicate
#: conjunct) amortizes, small enough that intermediate selection vectors
#: stay cache-friendly.
DEFAULT_BATCH_ROWS = 1024


@dataclass
class ColumnBatch:
    """One unit of columnar execution: the table's column lists (shared,
    zero-copy — indexed by schema position) plus a *selection vector* of
    the live row ids this batch covers.  Operators narrow ``sel``; the
    columns themselves are never copied until late materialization at
    the result boundary."""

    columns: Tuple[List[Any], ...]
    sel: List[int]


def iter_column_batches(heap, batch_rows: int = DEFAULT_BATCH_ROWS) -> Iterator[ColumnBatch]:
    """Yield :class:`ColumnBatch` stripes of ``batch_rows`` slots over a
    :class:`~repro.db.storage.HeapTable`, skipping tombstones.  Callers
    must hold the table's plan-level read lock for the duration."""
    columns = heap.columns_view()
    total = heap.slot_count
    for start in range(0, total, batch_rows):
        sel = heap.live_selection(start, start + batch_rows)
        if sel:
            yield ColumnBatch(columns, sel)


@dataclass
class ScanStats:
    led: int = 0
    shared: int = 0
    solo: int = 0


@dataclass
class _ActiveScan:
    done: threading.Event = field(default_factory=threading.Event)
    followers: int = 0
    failed: BaseException = None  # type: ignore[assignment]


class SharedScanManager:
    """Coordinates concurrent full scans of the same table."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._active: Dict[str, _ActiveScan] = {}
        self.stats = ScanStats()

    @property
    def enabled(self) -> bool:
        return self._enabled

    def run(self, table_name: str, do_io: Callable[[], None]) -> None:
        """Execute the IO portion of a full scan of ``table_name``.

        ``do_io`` performs the buffer-pool page touches.  Exactly one of
        the concurrently arriving scanners runs it; the rest block until
        it completes and are charged nothing.  If the leader's IO raises,
        followers re-run their own IO rather than propagate a foreign
        error.
        """
        if not self._enabled:
            with self._lock:
                self.stats.solo += 1
            do_io()
            return

        with self._lock:
            active = self._active.get(table_name)
            if active is None:
                active = _ActiveScan()
                self._active[table_name] = active
                leader = True
            else:
                active.followers += 1
                leader = False

        if leader:
            try:
                do_io()
            except BaseException as exc:
                active.failed = exc
                raise
            finally:
                with self._lock:
                    self.stats.led += 1
                    del self._active[table_name]
                active.done.set()
        else:
            active.done.wait()
            if active.failed is not None:
                # Leader failed; do our own IO so this scan still runs.
                do_io()
                with self._lock:
                    self.stats.solo += 1
            else:
                with self._lock:
                    self.stats.shared += 1

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = ScanStats()
