"""Explicit transactions: strict two-phase locking plus an undo log.

The paper's Discussion section leaves "the interaction between
asynchronous queries and transaction semantics" as future work; this
module supplies the substrate needed to explore it.  The model is
deliberately classical:

* **Table-granularity strict 2PL.**  A transaction takes a shared lock
  on every table it reads and an exclusive lock on every table it
  writes; all locks are held until commit or rollback.  Lock waits time
  out (:class:`~repro.db.errors.TransactionTimeoutError`) rather than
  running deadlock detection — with table-granularity locks and the
  short transactions of the paper's workloads, timeouts are simpler and
  observably equivalent.
* **Logical undo.**  Every INSERT / UPDATE / DELETE executed under a
  transaction appends an undo entry; rollback replays the entries in
  reverse, restoring both heap rows and index entries.  Because the
  writer holds the table exclusively for the whole transaction, reverse
  replay is sufficient — no other transaction can have interleaved.
* **Autocommit unchanged.**  Statements executed without an explicit
  transaction behave exactly as before (single-statement atomicity via
  the per-table readers/writer latch); none of the paper's benchmarks
  pay any new cost.

The asynchronous-submission rules (what the Discussion section asks
about) are enforced by :class:`repro.client.connection.Connection`:
asynchronous *reads* may be in flight under an open transaction — they
run under the transaction's shared locks on server worker threads — but
asynchronous *updates* are rejected, because their failure order would
be unobservable before commit.  Commit and rollback drain in-flight
asynchronous reads first.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .catalog import Catalog
from .errors import (
    TransactionStateError,
    TransactionTimeoutError,
)

#: Lock modes, ordered by strength.
SHARED = "S"
EXCLUSIVE = "X"

#: Transaction states.
ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


@dataclass(frozen=True)
class UndoEntry:
    """One logical undo step: how to reverse a single row mutation.

    ``kind`` is ``insert`` / ``update`` / ``delete`` (the *forward*
    operation).  ``row`` is the pre-image for updates and deletes, the
    inserted row for inserts; ``new_row`` is the post-image of updates.
    """

    kind: str
    table: str
    row_id: int
    row: Tuple[Any, ...]
    new_row: Optional[Tuple[Any, ...]] = None


class _TableLock:
    """One table's transaction lock: multiple sharers or one owner.

    Supports upgrade from shared to exclusive when the requester is the
    sole sharer (the common read-then-update pattern).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._sharers: Dict[int, int] = {}  # txn id -> hold count
        self._owner: Optional[int] = None  # txn id holding exclusive
        self._owner_count = 0

    def acquire(self, txn_id: int, mode: str, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while not self._grantable(txn_id, mode):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    raise TransactionTimeoutError(
                        f"transaction {txn_id} timed out waiting for "
                        f"{mode} lock"
                    )
            self._grant(txn_id, mode)

    def _grantable(self, txn_id: int, mode: str) -> bool:
        if self._owner == txn_id:
            return True  # already exclusive; any request is redundant
        if mode == SHARED:
            return self._owner is None
        # exclusive request: no owner and no sharers other than self
        others = [tid for tid in self._sharers if tid != txn_id]
        return self._owner is None and not others

    def _grant(self, txn_id: int, mode: str) -> None:
        if self._owner == txn_id:
            self._owner_count += 1
            return
        if mode == SHARED:
            self._sharers[txn_id] = self._sharers.get(txn_id, 0) + 1
            return
        # exclusive: absorb our own shared holds into the ownership
        self._sharers.pop(txn_id, None)
        self._owner = txn_id
        self._owner_count += 1

    def release_all(self, txn_id: int) -> None:
        """Drop every hold ``txn_id`` has on this table."""
        with self._cond:
            self._sharers.pop(txn_id, None)
            if self._owner == txn_id:
                self._owner = None
                self._owner_count = 0
            self._cond.notify_all()

    def held_by(self, txn_id: int) -> Optional[str]:
        with self._cond:
            if self._owner == txn_id:
                return EXCLUSIVE
            if txn_id in self._sharers:
                return SHARED
            return None


class LockManager:
    """Transaction-scoped table locks (logical layer above the per-table
    physical latch in :mod:`repro.db.concurrency`)."""

    def __init__(self, timeout_s: float = 5.0) -> None:
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._tables: Dict[str, _TableLock] = {}

    def _table_lock(self, table: str) -> _TableLock:
        with self._lock:
            lock = self._tables.get(table)
            if lock is None:
                lock = self._tables[table] = _TableLock()
            return lock

    def acquire(
        self, txn: "Transaction", table: str, mode: str, timeout_s: Optional[float] = None
    ) -> None:
        held = self._table_lock(table).held_by(txn.txn_id)
        if held == EXCLUSIVE or held == mode:
            return  # re-entrant / already strong enough
        self._table_lock(table).acquire(
            txn.txn_id, mode, self.timeout_s if timeout_s is None else timeout_s
        )
        txn._note_lock(table)

    def release_all(self, txn: "Transaction") -> None:
        for table in txn._held_tables():
            self._table_lock(table).release_all(txn.txn_id)

    def mode_held(self, txn: "Transaction", table: str) -> Optional[str]:
        return self._table_lock(table).held_by(txn.txn_id)


class Transaction:
    """One explicit transaction: identity, state, locks, undo log.

    Created by :meth:`TransactionManager.begin`; finished by
    :meth:`TransactionManager.commit` / :meth:`rollback` (the client
    :class:`~repro.client.connection.Connection` wraps these).
    """

    def __init__(self, txn_id: int, manager: "TransactionManager") -> None:
        self.txn_id = txn_id
        self._manager = manager
        self._state_lock = threading.Lock()
        self._state = ACTIVE
        self._undo: List[UndoEntry] = []
        self._locked_tables: Dict[str, None] = {}
        #: Tables this transaction wrote (None = unknown target).  The
        #: server broadcasts cache invalidations for this set at commit
        #: — never at rollback, whose writes are undone.
        self._write_tables: Dict[Optional[str], None] = {}
        self._drained = threading.Condition(self._state_lock)
        self._in_flight = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._state_lock:
            return self._state

    @property
    def is_active(self) -> bool:
        return self.state == ACTIVE

    def _require_active(self) -> None:
        state = self.state
        if state != ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {state}, not active"
            )

    # ------------------------------------------------------------------
    # async-read accounting (Connection increments around submits)
    # ------------------------------------------------------------------
    def enter_async(self) -> None:
        with self._state_lock:
            if self._state != ACTIVE:
                raise TransactionStateError(
                    f"transaction {self.txn_id} is {self._state}; "
                    "cannot submit new work"
                )
            self._in_flight += 1

    def exit_async(self) -> None:
        with self._state_lock:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._drained.notify_all()

    @property
    def in_flight(self) -> int:
        with self._state_lock:
            return self._in_flight

    def _wait_drained(self) -> None:
        with self._state_lock:
            while self._in_flight:
                self._drained.wait()

    # ------------------------------------------------------------------
    # write-set tracking (server write path calls this)
    # ------------------------------------------------------------------
    def note_write(self, table: Optional[str]) -> bool:
        """Record a table this transaction wrote, for the commit-time
        cache-invalidation broadcast; returns True on the first note of
        ``table`` (the server marks it uncommitted exactly once)."""
        with self._state_lock:
            if table in self._write_tables:
                return False
            self._write_tables[table] = None
            return True

    def written_tables(self) -> List[Optional[str]]:
        with self._state_lock:
            return list(self._write_tables)

    # ------------------------------------------------------------------
    # undo log (ExecutionContext records through these)
    # ------------------------------------------------------------------
    def record_insert(self, table: str, row_id: int, row: Tuple) -> None:
        self._undo.append(UndoEntry("insert", table, row_id, tuple(row)))

    def record_update(
        self, table: str, row_id: int, old_row: Tuple, new_row: Tuple
    ) -> None:
        self._undo.append(
            UndoEntry("update", table, row_id, tuple(old_row), tuple(new_row))
        )

    def record_delete(self, table: str, row_id: int, row: Tuple) -> None:
        self._undo.append(UndoEntry("delete", table, row_id, tuple(row)))

    @property
    def undo_depth(self) -> int:
        return len(self._undo)

    # ------------------------------------------------------------------
    # lock bookkeeping (LockManager calls these)
    # ------------------------------------------------------------------
    def _note_lock(self, table: str) -> None:
        with self._state_lock:
            self._locked_tables[table] = None

    def _held_tables(self) -> List[str]:
        with self._state_lock:
            return list(self._locked_tables)

    # ------------------------------------------------------------------
    # convenience pass-throughs
    # ------------------------------------------------------------------
    def commit(self) -> None:
        self._manager.commit(self)

    def rollback(self) -> None:
        self._manager.rollback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Transaction(id={self.txn_id}, state={self.state})"


class TransactionManager:
    """Begins, commits and rolls back transactions over one catalog."""

    def __init__(self, catalog: Catalog, lock_timeout_s: float = 5.0) -> None:
        self._catalog = catalog
        self.locks = LockManager(lock_timeout_s)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._active: Dict[int, Transaction] = {}
        #: Installed by the owning DatabaseServer: called with each
        #: committed write's table (None = all) inside the commit
        #: boundary, before locks are released.
        self.invalidation_hook: Optional[Callable[[Optional[str]], Any]] = None
        #: Called per written table after a rollback's undo replay: the
        #: restore is itself a data change, so the server bumps the
        #: table's write version (spoiling any cached read that
        #: overlapped the transaction) without evicting the still-valid
        #: pre-transaction entries.
        self.data_change_hook: Optional[Callable[[Optional[str]], Any]] = None
        #: Called per written table when a transaction finishes either
        #: way: clears the server's uncommitted-write mark.
        self.release_hook: Optional[Callable[[Optional[str]], Any]] = None

    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        txn = Transaction(next(self._ids), self)
        with self._lock:
            self._active[txn.txn_id] = txn
        return txn

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    # ------------------------------------------------------------------
    # statement-time lock acquisition (server calls this)
    # ------------------------------------------------------------------
    def lock_for_statement(self, txn: Transaction, table: str, write: bool) -> None:
        txn._require_active()
        self.locks.acquire(txn, table, EXCLUSIVE if write else SHARED)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def commit(self, txn: Transaction) -> None:
        txn._require_active()
        txn._wait_drained()
        with txn._state_lock:
            txn._state = COMMITTED
        txn._undo.clear()
        # Cache-invalidation broadcast inside the commit boundary: the
        # transaction's writes become durable and shared caches drop
        # their readers before the table locks are released.
        self._broadcast_writes(txn)
        self._finish(txn)

    def rollback(self, txn: Transaction) -> None:
        txn._require_active()
        txn._wait_drained()
        # The txn still holds exclusive locks on every table it wrote,
        # so reverse replay cannot interleave with other transactions.
        # Consecutive entries against the same table replay under one
        # physical latch acquisition (global reverse order preserved).
        run: List[UndoEntry] = []
        for entry in reversed(txn._undo):
            if run and run[-1].table != entry.table:
                self._undo_run(run)
                run = []
            run.append(entry)
        if run:
            self._undo_run(run)
        txn._undo.clear()
        with txn._state_lock:
            txn._state = ABORTED
        # No invalidation broadcast: the pre-transaction data — which is
        # what published cache entries hold — has just been restored.
        # The undo is still a data change, though: bump versions so any
        # in-flight cached read that overlapped the dirty window fails
        # its publication check instead of retaining a dirty value.
        if self.data_change_hook is not None:
            for table in txn.written_tables():
                self.data_change_hook(table)
        self._finish(txn)

    def _broadcast_writes(self, txn: Transaction) -> None:
        hook = self.invalidation_hook
        if hook is None:
            return
        tables = txn.written_tables()
        if any(table is None for table in tables):
            hook(None)  # unknown write target: drop everything, once
            return
        for table in tables:
            hook(table)

    def _finish(self, txn: Transaction) -> None:
        if self.release_hook is not None:
            for table in txn.written_tables():
                self.release_hook(table)
        self.locks.release_all(txn)
        with self._lock:
            self._active.pop(txn.txn_id, None)

    # ------------------------------------------------------------------
    # undo application
    # ------------------------------------------------------------------
    def _undo_one(self, entry: UndoEntry) -> None:
        self._undo_run([entry])

    def _undo_run(self, entries: List[UndoEntry]) -> None:
        """Replay a run of undo entries against one table under a single
        write-latch acquisition (entries are already in replay order)."""
        info = self._catalog.table(entries[0].table)
        with info.heap.lock.writing():
            for entry in entries:
                if entry.kind == "insert":
                    info.heap.delete(entry.row_id)
                    self._catalog.on_delete(entry.table, entry.row_id, entry.row)
                elif entry.kind == "update":
                    info.heap.update(entry.row_id, entry.row)
                    self._catalog.on_update(
                        entry.table, entry.row_id, entry.new_row, entry.row
                    )
                elif entry.kind == "delete":
                    info.heap.restore(entry.row_id, entry.row)
                    self._catalog.on_insert(entry.table, entry.row_id, entry.row)
                else:  # pragma: no cover - UndoEntry kinds are closed
                    raise TransactionStateError(
                        f"unknown undo kind {entry.kind!r}"
                    )
