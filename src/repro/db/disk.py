"""Simulated disk array with distance-dependent seeks and SSTF queues.

Why this shape: the paper attributes the gains of concurrent query
submission to (a) overlap of client and server work, (b) *multiple
disks* on the server, and (c) request reordering ("RID ordering prior to
fetch", shorter seeks).  The model implements (b) and (c) directly:

* pages are striped across ``spindles`` independent heads, so concurrent
  queries drive several spindles at once while a synchronous client
  keeps at most one busy;
* each spindle serves its pending queue shortest-seek-first, and seek
  time grows with head travel distance — a deep queue (many in-flight
  queries) therefore yields genuinely shorter average seeks, the
  elevator effect;
* reading the next sequential page costs only the transfer time.

A synchronous one-query-at-a-time client gets none of these benefits,
which is exactly the asymmetry Figures 12/13 of the paper measure.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .latency import LatencyMeter, LatencyProfile, precise_sleep


@dataclass
class DiskStats:
    """Counters exposed for tests and benchmark reports."""

    reads: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    total_service_time_s: float = 0.0
    total_seek_pages: int = 0
    max_queue_depth: int = 0


@dataclass
class _Request:
    position: int
    sequence: int
    event: threading.Event = field(default_factory=threading.Event)


class _Spindle:
    """One head: its own queue, position and busy flag."""

    __slots__ = ("head", "busy", "pending")

    def __init__(self) -> None:
        self.head = 0
        self.busy = False
        self.pending: Dict[int, _Request] = {}


class SimulatedDisk:
    """A striped array of spindles shared by all tables of one database.

    ``read(name, page_no)`` blocks the calling thread for the simulated
    service time of that page on its spindle.  Service order among
    concurrently waiting threads on one spindle is shortest-seek-first
    (arrival order when ``elevator=False`` — the ablation benchmark
    compares the two).
    """

    def __init__(
        self,
        profile: LatencyProfile,
        meter: Optional[LatencyMeter] = None,
        elevator: bool = True,
        spindles: Optional[int] = None,
    ) -> None:
        self._profile = profile
        self._meter = meter
        self._elevator = elevator
        count = spindles if spindles is not None else profile.disk_spindles
        if count < 1:
            raise ValueError("need at least one spindle")
        self._spindles = [_Spindle() for _ in range(count)]
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._sequence = itertools.count()
        self._extents: Dict[str, int] = {}
        self._next_extent = 0
        self.stats = DiskStats()

    @property
    def spindle_count(self) -> int:
        return len(self._spindles)

    @property
    def elevator_enabled(self) -> bool:
        return self._elevator

    # ------------------------------------------------------------------
    # extent management
    # ------------------------------------------------------------------
    def allocate_extent(self, name: str, pages: int) -> int:
        """Reserve contiguous logical positions for ``name``."""
        with self._lock:
            base = self._next_extent
            self._extents[name] = base
            self._next_extent = base + max(pages, 1)
            return base

    def extent_base(self, name: str) -> int:
        with self._lock:
            if name not in self._extents:
                base = self._next_extent
                self._extents[name] = base
                self._next_extent = base + 1024
            return self._extents[name]

    def grow_extent(self, name: str, pages: int) -> None:
        """Ensure the extent for ``name`` spans at least ``pages`` pages."""
        with self._lock:
            if name not in self._extents:
                self._extents[name] = self._next_extent
                self._next_extent += max(pages, 1)
            else:
                end = self._extents[name] + pages
                if end > self._next_extent:
                    self._next_extent = end

    # ------------------------------------------------------------------
    # IO path
    # ------------------------------------------------------------------
    def read(self, name: str, page_no: int) -> None:
        """Block for the service time of one page read."""
        self._serve(self.extent_base(name) + page_no)

    def write(self, name: str, page_no: int) -> None:
        """Page writes share the mechanical model of reads."""
        self._serve(self.extent_base(name) + page_no)

    def _serve(self, position: int) -> None:
        spindle = self._spindles[position % len(self._spindles)]
        request = _Request(position, next(self._sequence))
        with self._lock:
            spindle.pending[request.sequence] = request
            depth = sum(len(s.pending) for s in self._spindles)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            while spindle.busy or not self._is_next(spindle, request):
                self._wakeup.wait()
            spindle.busy = True
            gap = abs(position - spindle.head)
            profile = self._profile
            if gap <= 1:
                service_s = profile.disk_sequential_s
                self.stats.sequential_reads += 1
            else:
                service_s = min(
                    profile.disk_seek_max_s,
                    profile.disk_seek_min_s + gap * profile.disk_seek_per_page_s,
                )
                self.stats.random_reads += 1
            self.stats.reads += 1
            self.stats.total_service_time_s += service_s
            self.stats.total_seek_pages += gap
            spindle.head = position
        try:
            if self._meter is not None:
                self._meter.charge("disk", service_s)
            else:  # pragma: no cover - the meter is always wired in practice
                precise_sleep(service_s)
        finally:
            with self._lock:
                spindle.busy = False
                del spindle.pending[request.sequence]
                self._wakeup.notify_all()

    def _is_next(self, spindle: _Spindle, request: _Request) -> bool:
        """Should ``request`` be the next served on its spindle?"""
        if request.sequence not in spindle.pending:  # pragma: no cover
            return False
        if self._elevator:
            best = min(
                spindle.pending.values(),
                key=lambda r: (abs(r.position - spindle.head), r.sequence),
            )
        else:
            best = min(spindle.pending.values(), key=lambda r: r.sequence)
        return best.sequence == request.sequence

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        with self._lock:
            self.stats = DiskStats()
