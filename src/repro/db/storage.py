"""Heap file storage: rows packed into fixed-capacity pages.

A :class:`HeapTable` stores row tuples in insertion (or clustered-key)
order.  Pages exist only as an accounting unit — ``page_of(row_id)``
tells the access layer which buffer-pool page an access touches, which
is what drives the simulated IO costs.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Iterator, List, Optional, Tuple

from .concurrency import ReadWriteLock
from .errors import ConstraintError
from .types import Row, Schema

#: Default rows per 8 KB-ish page; small enough that the benchmark tables
#: span thousands of pages, large enough that scans amortize IO.
DEFAULT_ROWS_PER_PAGE = 64


class HeapTable:
    """Row storage for one table.

    When ``clustered_on`` is set, rows are kept physically sorted on that
    column, so equality lookups on it touch one page run (the paper's
    Experiment 3 uses a clustering index on ``category.category_id``).

    Deleted rows leave tombstones (``None``) so that row ids — which the
    indexes reference — stay stable; ``compact()`` rebuilds.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        clustered_on: Optional[str] = None,
    ) -> None:
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be positive")
        self.name = name
        self.schema = schema
        self.rows_per_page = rows_per_page
        self.clustered_on = clustered_on
        self._cluster_pos = (
            schema.position(clustered_on, name) if clustered_on else None
        )
        self._rows: List[Optional[Row]] = []
        self._cluster_keys: List[Any] = []  # parallel to _rows when clustered
        self._live_count = 0
        self.lock = ReadWriteLock()
        self._mutate = threading.Lock()

    @property
    def is_clustered(self) -> bool:
        return self._cluster_pos is not None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def page_of(self, row_id: int) -> int:
        return row_id // self.rows_per_page

    @property
    def page_count(self) -> int:
        if not self._rows:
            return 0
        return (len(self._rows) - 1) // self.rows_per_page + 1

    @property
    def row_count(self) -> int:
        """Number of live (non-deleted) rows."""
        return self._live_count

    def __len__(self) -> int:
        return self._live_count

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, values: Tuple[Any, ...]) -> int:
        """Insert a row (already schema-coerced); returns its row id.

        Clustered tables insert in key order, shifting the tail.  The
        benchmarks bulk-load clustered tables in sorted order, so the
        shift is the exception, not the rule.
        """
        row = self.schema.coerce_row(values)
        with self._mutate:
            if self._cluster_pos is None:
                self._rows.append(row)
                self._live_count += 1
                return len(self._rows) - 1
            key = row[self._cluster_pos]
            position = bisect.bisect_right(self._cluster_keys, _OrderKey(key))
            self._rows.insert(position, row)
            self._cluster_keys.insert(position, _OrderKey(key))
            self._live_count += 1
            return position

    def delete(self, row_id: int) -> None:
        with self._mutate:
            if self._rows[row_id] is None:
                raise ConstraintError(f"row {row_id} already deleted")
            self._rows[row_id] = None
            if self._cluster_pos is not None:
                self._cluster_keys[row_id] = _OrderKey(None)
            self._live_count -= 1

    def update(self, row_id: int, row: Row) -> None:
        """Replace a row in place.

        Updating the clustering key in place is disallowed; callers must
        delete + reinsert (the planner does exactly that).
        """
        with self._mutate:
            old = self._rows[row_id]
            if old is None:
                raise ConstraintError(f"row {row_id} is deleted")
            if self._cluster_pos is not None:
                if row[self._cluster_pos] != old[self._cluster_pos]:
                    raise ConstraintError(
                        "cannot update clustering key in place"
                    )
            self._rows[row_id] = self.schema.coerce_row(row)

    def restore(self, row_id: int, row: Row) -> None:
        """Resurrect a tombstoned row in place (transaction rollback).

        The inverse of :meth:`delete`: the row id must currently hold a
        tombstone.  Only rollback uses this — the deleting transaction
        held the table exclusively, so the slot cannot have been
        compacted away in between.
        """
        with self._mutate:
            if self._rows[row_id] is not None:
                raise ConstraintError(f"row {row_id} is not deleted")
            coerced = self.schema.coerce_row(row)
            self._rows[row_id] = coerced
            if self._cluster_pos is not None:
                self._cluster_keys[row_id] = _OrderKey(coerced[self._cluster_pos])
            self._live_count += 1

    def compact(self) -> None:
        """Drop tombstones; invalidates row ids (indexes must rebuild)."""
        with self._mutate:
            self._rows = [row for row in self._rows if row is not None]
            if self._cluster_pos is not None:
                self._cluster_keys = [
                    _OrderKey(row[self._cluster_pos]) for row in self._rows
                ]
            self._live_count = len(self._rows)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def fetch(self, row_id: int) -> Optional[Row]:
        return self._rows[row_id]

    def iter_rows(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(row_id, row)`` for live rows, in physical order."""
        for row_id, row in enumerate(self._rows):
            if row is not None:
                yield row_id, row

    def iter_pages(self) -> Iterator[Tuple[int, List[Tuple[int, Row]]]]:
        """Yield ``(page_no, [(row_id, row), ...])`` per page."""
        page: List[Tuple[int, Row]] = []
        current_page = 0
        for row_id, row in enumerate(self._rows):
            page_no = self.page_of(row_id)
            if page_no != current_page:
                yield current_page, page
                page = []
                current_page = page_no
            if row is not None:
                page.append((row_id, row))
        if page or self._rows:
            yield current_page, page

    def cluster_range(self, key: Any) -> Tuple[int, int]:
        """Row-id range [lo, hi) holding ``key`` on a clustered table."""
        if self._cluster_pos is None:
            raise ConstraintError(f"table {self.name!r} is not clustered")
        marker = _OrderKey(key)
        lo = bisect.bisect_left(self._cluster_keys, marker)
        hi = bisect.bisect_right(self._cluster_keys, marker)
        return lo, hi


class _OrderKey:
    """Total order over heterogeneous values with None sorting last.

    Lets clustered tables hold NULLs and mixed comparable values without
    ``TypeError`` from raw tuple comparison.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def _rank(self) -> Tuple[int, Any]:
        if self.value is None:
            return (2, 0)
        if isinstance(self.value, (int, float)) and not isinstance(self.value, bool):
            return (0, self.value)
        return (1, str(self.value))

    def __lt__(self, other: "_OrderKey") -> bool:
        return self._rank() < other._rank()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self._rank() == other._rank()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_OrderKey({self.value!r})"


#: Public alias used by the sort operator.
OrderKey = _OrderKey
