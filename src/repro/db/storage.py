"""Heap file storage: columnar slots packed into fixed-capacity pages.

A :class:`HeapTable` stores table data column-at-a-time: one Python list
per schema column (all the same length) plus a validity bytearray whose
byte ``i`` says whether slot ``i`` holds a live row.  Row ids are slot
indexes, in insertion (or clustered-key) order.  Pages exist only as an
accounting unit — ``page_of(row_id)`` tells the access layer which
buffer-pool page an access touches, which is what drives the simulated
IO costs.

The row-oriented API (:meth:`~HeapTable.fetch`,
:meth:`~HeapTable.iter_rows`, …) is preserved on top of the columnar
layout so the row-at-a-time executor keeps working unchanged; the
columnar executor reads the column lists directly via
:meth:`~HeapTable.columns_view` / :meth:`~HeapTable.live_selection` and
materializes tuples only at the result boundary.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterator, List, Optional, Tuple

from .concurrency import ReadWriteLock
from .errors import ConstraintError
from .types import Row, Schema

#: Default rows per 8 KB-ish page; small enough that the benchmark tables
#: span thousands of pages, large enough that scans amortize IO.
DEFAULT_ROWS_PER_PAGE = 64


class HeapTable:
    """Columnar storage for one table.

    When ``clustered_on`` is set, rows are kept physically sorted on that
    column, so equality lookups on it touch one page run (the paper's
    Experiment 3 uses a clustering index on ``category.category_id``).

    Deleted rows leave tombstones (validity byte cleared) so that row
    ids — which the indexes reference — stay stable; ``compact()``
    rebuilds.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        clustered_on: Optional[str] = None,
    ) -> None:
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be positive")
        self.name = name
        self.schema = schema
        self.rows_per_page = rows_per_page
        self.clustered_on = clustered_on
        self._cluster_pos = (
            schema.position(clustered_on, name) if clustered_on else None
        )
        #: One value list per schema column; all kept the same length.
        self._columns: List[List[Any]] = [[] for _ in schema.columns]
        #: Per-slot liveness: 1 = live row, 0 = tombstone.
        self._valid = bytearray()
        self._cluster_keys: List[Any] = []  # parallel to slots when clustered
        self._live_count = 0
        self.lock = ReadWriteLock()
        self._mutate = threading.Lock()

    @property
    def is_clustered(self) -> bool:
        return self._cluster_pos is not None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def page_of(self, row_id: int) -> int:
        return row_id // self.rows_per_page

    @property
    def page_count(self) -> int:
        if not self._valid:
            return 0
        return (len(self._valid) - 1) // self.rows_per_page + 1

    @property
    def row_count(self) -> int:
        """Number of live (non-deleted) rows."""
        return self._live_count

    @property
    def slot_count(self) -> int:
        """Number of physical slots, tombstones included."""
        return len(self._valid)

    def __len__(self) -> int:
        return self._live_count

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, values: Tuple[Any, ...]) -> int:
        """Insert a row (already schema-coerced); returns its row id.

        Clustered tables insert in key order, shifting the tail.  The
        benchmarks bulk-load clustered tables in sorted order, so the
        shift is the exception, not the rule.
        """
        row = self.schema.coerce_row(values)
        with self._mutate:
            if self._cluster_pos is None:
                for column, value in zip(self._columns, row):
                    column.append(value)
                self._valid.append(1)
                self._live_count += 1
                return len(self._valid) - 1
            key = row[self._cluster_pos]
            position = bisect.bisect_right(self._cluster_keys, _OrderKey(key))
            for column, value in zip(self._columns, row):
                column.insert(position, value)
            self._valid.insert(position, 1)
            self._cluster_keys.insert(position, _OrderKey(key))
            self._live_count += 1
            return position

    def delete(self, row_id: int) -> None:
        with self._mutate:
            if not self._valid[row_id]:
                raise ConstraintError(f"row {row_id} already deleted")
            self._valid[row_id] = 0
            # Column values stay in place under the tombstone; restore()
            # overwrites them and compact() drops the slot.
            if self._cluster_pos is not None:
                self._cluster_keys[row_id] = _OrderKey(None)
            self._live_count -= 1

    def update(self, row_id: int, row: Row) -> None:
        """Replace a row in place.

        Updating the clustering key in place is disallowed; callers must
        delete + reinsert (the planner does exactly that).
        """
        with self._mutate:
            if not self._valid[row_id]:
                raise ConstraintError(f"row {row_id} is deleted")
            if self._cluster_pos is not None:
                if row[self._cluster_pos] != self._columns[self._cluster_pos][row_id]:
                    raise ConstraintError(
                        "cannot update clustering key in place"
                    )
            coerced = self.schema.coerce_row(row)
            for column, value in zip(self._columns, coerced):
                column[row_id] = value

    def restore(self, row_id: int, row: Row) -> None:
        """Resurrect a tombstoned row in place (transaction rollback).

        The inverse of :meth:`delete`: the row id must currently hold a
        tombstone.  Only rollback uses this — the deleting transaction
        held the table exclusively, so the slot cannot have been
        compacted away in between.
        """
        with self._mutate:
            if self._valid[row_id]:
                raise ConstraintError(f"row {row_id} is not deleted")
            coerced = self.schema.coerce_row(row)
            for column, value in zip(self._columns, coerced):
                column[row_id] = value
            self._valid[row_id] = 1
            if self._cluster_pos is not None:
                self._cluster_keys[row_id] = _OrderKey(coerced[self._cluster_pos])
            self._live_count += 1

    def compact(self) -> None:
        """Drop tombstones; invalidates row ids (indexes must rebuild)."""
        with self._mutate:
            keep = [row_id for row_id, live in enumerate(self._valid) if live]
            self._columns = [
                [column[row_id] for row_id in keep] for column in self._columns
            ]
            self._valid = bytearray(b"\x01" * len(keep))
            if self._cluster_pos is not None:
                cluster = self._columns[self._cluster_pos]
                self._cluster_keys = [_OrderKey(value) for value in cluster]
            self._live_count = len(keep)

    # ------------------------------------------------------------------
    # row-oriented access (the row executor and the write paths)
    # ------------------------------------------------------------------
    def fetch(self, row_id: int) -> Optional[Row]:
        if not self._valid[row_id]:
            return None
        return tuple(column[row_id] for column in self._columns)

    def iter_rows(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(row_id, row)`` for live rows, in physical order."""
        valid = self._valid
        if not self._columns:
            for row_id in range(len(valid)):
                if valid[row_id]:
                    yield row_id, ()
            return
        for row_id, row in enumerate(zip(*self._columns)):
            if valid[row_id]:
                yield row_id, row

    def iter_pages(self) -> Iterator[Tuple[int, List[Tuple[int, Row]]]]:
        """Yield ``(page_no, [(row_id, row), ...])`` per page."""
        page: List[Tuple[int, Row]] = []
        current_page = 0
        for row_id in range(len(self._valid)):
            page_no = self.page_of(row_id)
            if page_no != current_page:
                yield current_page, page
                page = []
                current_page = page_no
            if self._valid[row_id]:
                page.append(
                    (row_id, tuple(column[row_id] for column in self._columns))
                )
        if page or self._valid:
            yield current_page, page

    def cluster_range(self, key: Any) -> Tuple[int, int]:
        """Row-id range [lo, hi) holding ``key`` on a clustered table."""
        if self._cluster_pos is None:
            raise ConstraintError(f"table {self.name!r} is not clustered")
        marker = _OrderKey(key)
        lo = bisect.bisect_left(self._cluster_keys, marker)
        hi = bisect.bisect_right(self._cluster_keys, marker)
        return lo, hi

    # ------------------------------------------------------------------
    # columnar access (the batch executor)
    # ------------------------------------------------------------------
    def columns_view(self) -> Tuple[List[Any], ...]:
        """The live column lists themselves — zero-copy, indexed by the
        schema column position.  Callers must hold the table's plan-level
        read lock; values under tombstoned slots are stale and must be
        skipped via :meth:`live_selection` / :meth:`validity_view`."""
        return tuple(self._columns)

    def validity_view(self) -> bytearray:
        """The liveness bitmap (byte per slot, 1 = live)."""
        return self._valid

    def live_selection(self, start: int, stop: int) -> List[int]:
        """Selection vector of live row ids in ``[start, stop)``."""
        valid = self._valid
        stop = min(stop, len(valid))
        if start >= stop:
            return []
        if not valid.count(0, start, stop):
            return list(range(start, stop))
        return [row_id for row_id in range(start, stop) if valid[row_id]]


class _OrderKey:
    """Total order over heterogeneous values with None sorting last.

    Lets clustered tables hold NULLs and mixed comparable values without
    ``TypeError`` from raw tuple comparison.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def _rank(self) -> Tuple[int, Any]:
        if self.value is None:
            return (2, 0)
        if isinstance(self.value, (int, float)) and not isinstance(self.value, bool):
            return (0, self.value)
        return (1, str(self.value))

    def __lt__(self, other: "_OrderKey") -> bool:
        return self._rank() < other._rank()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self._rank() == other._rank()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_OrderKey({self.value!r})"


#: Public alias used by the sort operator.
OrderKey = _OrderKey
