"""Exception hierarchy for the embedded database engine.

Every error raised by :mod:`repro.db` derives from :class:`DatabaseError`,
so client code can catch a single base class.  Parse-time, plan-time and
run-time failures are distinguished because the transformation runtime
must re-raise *run-time* errors at ``fetch_result`` in iteration order,
exactly where the original blocking program would have observed them.
"""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for every error raised by the database engine."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so tests can assert precise locations.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(DatabaseError):
    """A DDL operation conflicted with the existing catalog state."""


class UnknownTableError(CatalogError):
    """A statement referenced a table that does not exist."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(CatalogError):
    """A statement referenced a column not present in the table schema."""

    def __init__(self, column: str, table: str = "") -> None:
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {column!r}{where}")
        self.column = column
        self.table = table


class TypeMismatchError(DatabaseError):
    """A value could not be coerced to the declared column type."""


class PlanError(DatabaseError):
    """The planner could not produce a plan for a (parsed) statement."""


class ParamCountError(DatabaseError):
    """The number of bound parameters differs from the ``?`` markers."""

    def __init__(self, expected: int, got: int) -> None:
        super().__init__(f"statement expects {expected} parameter(s), got {got}")
        self.expected = expected
        self.got = got


class ConstraintError(DatabaseError):
    """A uniqueness or not-null constraint was violated."""


class ServerShutdownError(DatabaseError):
    """The server rejected a request because it is shutting down."""


class StatementHandleError(DatabaseError):
    """A prepared-statement handle was invalid or already closed."""


class TransactionError(DatabaseError):
    """Base class for explicit-transaction failures."""


class TransactionStateError(TransactionError):
    """An operation was illegal in the transaction's current state
    (e.g. committing twice, or submitting an asynchronous update while a
    transaction is open — see DESIGN.md on the Discussion-section
    update/transaction rules)."""


class TransactionTimeoutError(TransactionError):
    """A table-lock wait exceeded the lock manager's timeout.

    With table-granularity strict 2PL this is how lock conflicts —
    including deadlocks — surface; the losing transaction should be
    rolled back and retried."""
