"""Concurrency primitives for the database engine.

The engine uses a classic readers/writer lock per table: scans and index
lookups proceed concurrently, while INSERT/UPDATE/DELETE take the table
exclusively.  This is all the isolation the paper's workloads need (the
paper explicitly leaves transaction interaction to future work, and so do
we — see the Discussion section / DESIGN.md).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Writer preference prevents a stream of concurrent read queries (the
    transformed programs keep many in flight) from starving inserts in
    the mixed workloads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._readers_ok = threading.Condition(self._lock)
        self._writers_ok = threading.Condition(self._lock)
        self._active_readers = 0
        self._active_writer = False
        self._waiting_writers = 0

    def acquire_read(self) -> None:
        with self._lock:
            while self._active_writer or self._waiting_writers:
                self._readers_ok.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._lock:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._writers_ok.notify()

    def acquire_write(self) -> None:
        with self._lock:
            self._waiting_writers += 1
            try:
                while self._active_writer or self._active_readers:
                    self._writers_ok.wait()
            finally:
                self._waiting_writers -= 1
            self._active_writer = True

    def release_write(self) -> None:
        with self._lock:
            self._active_writer = False
            self._writers_ok.notify()
            self._readers_ok.notify_all()

    @contextmanager
    def reading(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
