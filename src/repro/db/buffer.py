"""Buffer pool: an LRU page cache in front of the simulated disk.

A page hit costs nothing (beyond the caller's CPU charge); a miss pays
the disk's service time.  ``clear()`` empties the pool, which is how the
benchmark harness produces the paper's *cold cache* runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from .disk import SimulatedDisk

PageKey = Tuple[str, int]


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class BufferPool:
    """Thread-safe LRU cache of (object name, page number) keys.

    Only page *identity* is cached — row data lives in Python lists and
    is always accessible; what the pool models is whether an access pays
    disk latency.  This mirrors how the paper's cold/warm cache split is
    purely a latency phenomenon.
    """

    def __init__(self, capacity_pages: int, disk: SimulatedDisk) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        self._capacity = capacity_pages
        self._disk = disk
        self._lock = threading.Lock()
        self._pages: "OrderedDict[PageKey, None]" = OrderedDict()
        self.stats = BufferStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def access(self, name: str, page_no: int) -> bool:
        """Touch one page; returns True on a cache hit.

        On a miss the calling thread blocks for the disk service time and
        the page is installed (evicting the LRU page if full).  Two
        threads missing on the same page may both go to disk — matching
        real pools without per-page latches under our simplified model;
        the shared-scan layer above deduplicates the common case.
        """
        key = (name, page_no)
        with self._lock:
            if key in self._pages:
                self._pages.move_to_end(key)
                self.stats.hits += 1
                return True
            self.stats.misses += 1
        self._disk.read(name, page_no)
        with self._lock:
            if key not in self._pages:
                if len(self._pages) >= self._capacity:
                    self._pages.popitem(last=False)
                self._pages[key] = None
            else:
                self._pages.move_to_end(key)
        return False

    def access_many(self, name: str, page_nos) -> int:
        """Touch a run of pages; returns the hit count.

        The hit/miss split is decided under one lock acquisition (the
        batch-scan path touches thousands of pages per statement; a lock
        round trip per page would dominate), then misses pay the disk in
        the caller's order — preserving the sequential access pattern the
        disk model rewards — and install together.
        """
        ordered = list(page_nos)
        misses = []
        with self._lock:
            for page_no in ordered:
                key = (name, page_no)
                if key in self._pages:
                    self._pages.move_to_end(key)
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
                    misses.append(page_no)
        for page_no in misses:
            self._disk.read(name, page_no)
        if misses:
            with self._lock:
                for page_no in misses:
                    key = (name, page_no)
                    if key not in self._pages:
                        if len(self._pages) >= self._capacity:
                            self._pages.popitem(last=False)
                        self._pages[key] = None
                    else:
                        self._pages.move_to_end(key)
        return len(ordered) - len(misses)

    def install(self, name: str, page_no: int) -> None:
        """Install a page without charging IO (used after page writes)."""
        key = (name, page_no)
        with self._lock:
            if key not in self._pages:
                if len(self._pages) >= self._capacity:
                    self._pages.popitem(last=False)
            self._pages[key] = None
            self._pages.move_to_end(key)

    def contains(self, name: str, page_no: int) -> bool:
        with self._lock:
            return (name, page_no) in self._pages

    def clear(self) -> None:
        """Drop every cached page: the next run sees a cold cache."""
        with self._lock:
            self._pages.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = BufferStats()

    def warm(self, name: str, page_count: int) -> None:
        """Mark pages of ``name`` resident without paying IO (test helper)."""
        with self._lock:
            for page_no in range(page_count):
                key = (name, page_no)
                if key not in self._pages and len(self._pages) >= self._capacity:
                    self._pages.popitem(last=False)
                self._pages[key] = None
