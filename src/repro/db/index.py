"""Secondary indexes: hash (equality) and ordered (range) access paths.

Indexes map column values to row ids.  Like the heap, an index has an IO
footprint: a lookup touches one or two index pages before touching the
heap pages of the matching rows.  Index page numbers are derived from
the key so that repeated lookups of the same key hit the buffer pool.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .errors import ConstraintError
from .storage import HeapTable

#: Key entries per index page (denser than heap pages).
INDEX_ENTRIES_PER_PAGE = 256


class HashIndex:
    """Equality index: value -> sorted list of row ids.

    ``io_name`` is the buffer-pool object name; ``page_for(key)`` spreads
    keys over the index's pages deterministically.
    """

    def __init__(self, name: str, table: HeapTable, column: str, unique: bool = False) -> None:
        self.name = name
        self.table = table
        self.column = column
        self.unique = unique
        self.io_name = f"idx:{name}"
        self._position = table.schema.position(column, table.name)
        self._buckets: Dict[Any, List[int]] = {}
        self._entries = 0

    # ------------------------------------------------------------------
    def build(self) -> None:
        """(Re)build from the current heap contents."""
        self._buckets.clear()
        self._entries = 0
        for row_id, row in self.table.iter_rows():
            self.add(row_id, row[self._position])

    def add(self, row_id: int, value: Any) -> None:
        bucket = self._buckets.setdefault(value, [])
        if self.unique and bucket:
            raise ConstraintError(
                f"unique index {self.name!r} violated for value {value!r}"
            )
        bisect.insort(bucket, row_id)
        self._entries += 1

    def remove(self, row_id: int, value: Any) -> None:
        bucket = self._buckets.get(value)
        if not bucket:
            return
        position = bisect.bisect_left(bucket, row_id)
        if position < len(bucket) and bucket[position] == row_id:
            bucket.pop(position)
            self._entries -= 1
        if not bucket:
            del self._buckets[value]

    # ------------------------------------------------------------------
    def lookup(self, value: Any) -> List[int]:
        """Row ids matching ``value`` (ascending, i.e. physical order)."""
        return list(self._buckets.get(value, ()))

    def page_for(self, value: Any) -> int:
        """Deterministic index page a probe of ``value`` touches."""
        page_count = max(1, self.page_count)
        return hash(value) % page_count

    @property
    def page_count(self) -> int:
        if self._entries == 0:
            return 1
        return (self._entries - 1) // INDEX_ENTRIES_PER_PAGE + 1

    @property
    def entry_count(self) -> int:
        return self._entries

    @property
    def key_count(self) -> int:
        """Exact number of distinct keys (drives the batch cost gate)."""
        return len(self._buckets)

    def keys(self) -> Iterator[Any]:
        return iter(self._buckets)


class OrderedIndex:
    """Ordered index over one column supporting range scans.

    Backed by a sorted list of ``(key, row_id)``; rebuilt wholesale on
    bulk load and maintained incrementally afterwards.  NULL keys are
    excluded (SQL semantics: NULL never matches a range predicate).
    """

    def __init__(self, name: str, table: HeapTable, column: str) -> None:
        self.name = name
        self.table = table
        self.column = column
        self.io_name = f"idx:{name}"
        self._position = table.schema.position(column, table.name)
        self._entries: List[Tuple[Any, int]] = []

    def build(self) -> None:
        self._entries = sorted(
            (row[self._position], row_id)
            for row_id, row in self.table.iter_rows()
            if row[self._position] is not None
        )

    def add(self, row_id: int, value: Any) -> None:
        if value is None:
            return
        bisect.insort(self._entries, (value, row_id))

    def remove(self, row_id: int, value: Any) -> None:
        if value is None:
            return
        position = bisect.bisect_left(self._entries, (value, row_id))
        if (
            position < len(self._entries)
            and self._entries[position] == (value, row_id)
        ):
            self._entries.pop(position)

    # ------------------------------------------------------------------
    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[int]:
        """Row ids with ``low <(=) key <(=) high``, in key order."""
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._entries, (low, -1))
        else:
            start = bisect.bisect_right(self._entries, (low, float("inf")))
        if high is None:
            stop = len(self._entries)
        elif high_inclusive:
            stop = bisect.bisect_right(self._entries, (high, float("inf")))
        else:
            stop = bisect.bisect_left(self._entries, (high, -1))
        return [row_id for _key, row_id in self._entries[start:stop]]

    def page_for(self, value: Any) -> int:
        """Index page touched when probing ``value`` (by sorted position)."""
        position = bisect.bisect_left(self._entries, (value, -1))
        return position // INDEX_ENTRIES_PER_PAGE

    @property
    def page_count(self) -> int:
        if not self._entries:
            return 1
        return (len(self._entries) - 1) // INDEX_ENTRIES_PER_PAGE + 1

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def key_count(self) -> int:
        """Distinct-key *estimate*: the entry count (an upper bound —
        exact counting would scan the whole sorted list).  The batch
        cost gate only needs rows-per-key to the right order of
        magnitude."""
        return len(self._entries)
