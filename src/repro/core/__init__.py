"""Shared client-runtime core.

One subsystem, one job: every way a query can be submitted — blocking
call, thread-pool handle, asyncio awaitable — is a thin front end over
the same :class:`~repro.core.submission.SubmissionPipeline`.  The paper's
premise is that *how* a request is coordinated (Section II's observer
model vs. callbacks vs. blocking) is a mechanical choice; this package
is the repo's enforcement of that premise at the architecture level.
"""

from .submission import (
    CallPipeline,
    SpeculativeHandle,
    SubmissionPipeline,
    SubmissionStats,
)

__all__ = [
    "CallPipeline",
    "SpeculativeHandle",
    "SubmissionPipeline",
    "SubmissionStats",
]
