"""The unified submission core: one cache-aware query path.

Every client runtime used to carry its own copy of the submit/fetch
lifecycle — blocking :meth:`Connection.execute_query`, the thread-pool
``submit_query`` path, and the asyncio front end (which bypassed the
result cache entirely).  This module owns that lifecycle once:

    normalize SQL + params
        → cache lookup (single-flight; hits resolve immediately)
        → dispatch to the :class:`~repro.db.server.DatabaseServer`
        → record stats
        → populate the cache

The front ends differ only in how they *wait*:

* the sync client blocks on :meth:`SubmissionPipeline.execute`;
* :class:`~repro.runtime.handles.QueryHandle` wraps the future returned
  by :meth:`SubmissionPipeline.submit`;
* ``AioQueryHandle`` wraps the same future via ``asyncio.wrap_future``.

A cache hit therefore resolves without a thread (or task) hop in every
runtime: the handle comes back already completed.

Invalidation is **not** handled here.  Writes invalidate server-side:
the pipeline registers its cache with the server
(:meth:`DatabaseServer.register_cache`), and the server broadcasts
per-table invalidations from its write path — inside the
transaction-commit boundary for transactional writes — so a write
through *any* connection (cached, cache-less, or transactional)
invalidates every registered cache.

**Cache-key semantics.**  The key is the normalized ``(sql, params)``
pair; it carries no connection or runtime identity, so any front end's
fill is any other front end's hit.  A request is *uncacheable* (the
pipeline bypasses the cache entirely) when it is a write, its params
are unhashable, it runs inside an explicit transaction, or another
transaction holds uncommitted writes against its tables; a completed
read is *retained* only if the tables' write-version token is unchanged
at publication time.  Together these guarantee a cached value is always
a committed, non-stale read.

**Speculative dispatch.**  :meth:`SubmissionPipeline.speculate` issues
a read whose consumer may never materialize (the prefetch pass's
unguarded mode).  The contract:

* the returned :class:`SpeculativeHandle` is tagged (``speculative`` is
  True) and tracked by the pipeline until *settled* — either consumed
  through ``fetch`` (a **hit**) or abandoned (a **waste**), each
  counted once in :class:`SubmissionStats`;
* an abandoned speculation that is still queued and invisible to other
  callers (no cache lease, no transaction accounting) is cancelled
  outright; otherwise it is left to finish — single-flight followers
  may be real reads, and a completed result is published through the
  exact same validity checks as any other read, so an abandoned or
  failed speculation can never plant a stale or failed value in the
  cache;
* :meth:`SubmissionPipeline.drain_speculations` (called by
  ``Connection.close``) abandons every unsettled handle and waits the
  in-flight ones out (under one overall deadline, so followers of
  another pipeline's never-completing loads cannot hang close), so
  dropped handles never leak executor work past the connection's
  lifetime.

**Set-oriented dispatch.**  With ``coalesce=True`` the pipeline routes
autocommit reads through a :class:`DispatchCoalescer`: submits of the
same prepared statement that are outstanding behind the executor —
exactly what prefetch hoisting out of loops and bursts of speculative
lifts produce — merge into one batched server call
(:meth:`~repro.db.server.DatabaseServer.submit_prepared_batch`, the
binding-demux operator) and the per-binding outcomes demultiplex back
to the individual handles.  One round-trip charge and one statement
execution answer the whole batch; a failing binding faults only its own
handle; cache publication stays per ``(key, tables)`` under the same
validity checks, and a coalesced speculation that settles as waste
never publishes.  Transactional reads and writes always take the plain
path.

:class:`CallPipeline` is the transport-agnostic half (cache lookup,
single-flight, dispatch, speculation ledger, stats);
:class:`SubmissionPipeline` layers the SQL specifics (statement
resolution, transaction rules, network charges, the optional
coalescer) on top.  Both live here so cache-lookup logic exists in
exactly one module.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import asdict, dataclass, replace
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..db.errors import DatabaseError, TransactionStateError
from ..db.plan import QueryResult
from ..db.server import DatabaseServer, PreparedStatement
from ..db.sql.ast_nodes import is_write
from ..db.txn import Transaction
from ..obs.metrics import Histogram, MetricsRegistry
from ..obs.trace import Span, Tracer
from ..prefetch.cache import ResultCache
from ..prefetch.tables import tables_of_statement
from ..runtime.handles import QueryHandle, failed_handle, resolved_future


@dataclass
class SubmissionStats:
    """Counters for one pipeline (shared by all its front ends)."""

    blocking_calls: int = 0
    async_submits: int = 0
    fetches: int = 0
    cache_hits: int = 0
    #: Speculative dispatches issued (``speculate``).  Every speculation
    #: eventually settles as exactly one hit or one waste; handles still
    #: unsettled (neither fetched nor abandoned yet) account for the
    #: difference ``speculations - speculation_hits - speculation_wasted``.
    speculations: int = 0
    #: Speculations whose handle was consumed by a fetch — the guard
    #: turned out true and the hidden round trip paid off.
    speculation_hits: int = 0
    #: Speculations abandoned unconsumed — explicitly, by the drain on
    #: connection close, or by the ledger's high-water sweep of
    #: completed-but-unclaimed handles — the guard turned out false.
    #: A sweep that misjudged a merely-slow consumer is corrected on the
    #: late fetch: the settle moves from here to ``speculation_hits``.
    speculation_wasted: int = 0
    #: Set-oriented dispatch: batches the coalescer merged (two or more
    #: same-statement submits answered by one server call) …
    coalesced_batches: int = 0
    #: … the submits those batches carried …
    coalesced_queries: int = 0
    #: … and the round trips that merging avoided (queries − batches).
    round_trips_saved: int = 0


@dataclass
class SiteSpeculationStats:
    """Per-call-site speculation ledger entry.

    Keyed by the speculation's site label (the generated code's call
    site, defaulting to the statement text).  This is the measurement
    the ROADMAP's adaptive-speculation feedback loop needs: compare a
    site's realized ``hit_rate`` against the cost model's breakeven
    probability and stop speculating where the guess ran hot.
    """

    speculations: int = 0
    hits: int = 0
    wasted: int = 0

    @property
    def settled(self) -> int:
        return self.hits + self.wasted

    @property
    def hit_rate(self) -> Optional[float]:
        """Realized hit fraction over settled speculations (None until
        at least one has settled)."""
        if not self.settled:
            return None
        return self.hits / self.settled


class SpeculativeHandle(QueryHandle):
    """A :class:`QueryHandle` whose consumer may never materialize.

    Returned by the ``speculate`` path; the prefetch pass's unguarded
    lift assigns it unconditionally and fetches it only on the guarded
    path.  ``abandon()`` settles it as wasted (idempotent; a no-op once
    fetched); unsettled handles are swept by
    :meth:`CallPipeline.drain_speculations`.
    """

    __slots__ = ("_pipeline", "_cancellable", "_swept", "_wasted")

    #: Class-level tag: lets front ends and tests recognize speculative
    #: handles without importing this module's internals.
    speculative = True

    def __init__(
        self,
        future,
        label: str = "",
        pipeline: Optional["CallPipeline"] = None,
        cancellable: bool = False,
    ) -> None:
        super().__init__(future, label=label)
        self._pipeline = pipeline
        self._cancellable = cancellable
        #: Set when the high-water sweep settled this handle as wasted;
        #: a later claim corrects the ledger (see ``claim``).
        self._swept = False
        #: Set while the handle stands settled as wasted (abandon or
        #: sweep); cleared by a late claim's reclassification.  The
        #: dispatch coalescer reads it at publication time: a coalesced
        #: speculation that settled as waste never publishes its value
        #: to the cache.
        self._wasted = False

    @property
    def wasted(self) -> bool:
        """Is this speculation currently settled as wasted?"""
        return self._wasted

    @property
    def cancellable(self) -> bool:
        """May an abandon cancel the underlying dispatch outright?

        Only when nobody else can observe it: no single-flight cache
        lease (a follower may be a real read) and no transaction
        in-flight accounting to unwind.
        """
        return self._cancellable

    def abandon(self) -> bool:
        """Settle this speculation as wasted.

        Returns True when this call did the settling; False when the
        handle was already fetched or abandoned.  Do not fetch an
        abandoned handle: a still-queued dispatch may have been
        cancelled, making ``result()`` raise ``CancelledError``.
        """
        if self._pipeline is None:
            return False
        return self._pipeline._settle_speculation(self, hit=False)

    def claim(self) -> bool:
        """Settle this speculation as a hit without blocking on it.

        ``fetch`` claims implicitly; front ends that wait through their
        own machinery (the asyncio adapter awaits the wrapped future
        directly) claim before waiting so a concurrent drain cannot
        misclassify a consumed handle as wasted.

        A handle the high-water sweep already settled as wasted is
        *reclassified* here (wasted decrements, hits increments): the
        consumer was merely slow, not absent.  The call still returns
        False — the settling itself happened earlier.
        """
        if self._pipeline is None:
            return False
        return self._pipeline._settle_speculation(self, hit=True)


class CallPipeline:
    """Transport-agnostic submission core.

    Owns the cache protocol (lookup, single-flight join, populate,
    failure propagation), the dispatch to a bounded
    :class:`~repro.runtime.executor.AsyncExecutor`, and the stats.  The
    *transport* — what a round trip actually is — arrives as the
    ``invoke`` callable; the web-service client reuses this class
    directly with HTTP-shaped invokes.
    """

    def __init__(
        self,
        executor,
        cache: Optional[ResultCache] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._executor = executor
        self._cache = cache
        self.stats = SubmissionStats()
        #: Guards every non-speculation counter of ``stats``.  The
        #: speculation_* counters stay under ``_spec_lock`` (they must
        #: move in lockstep with the ledger); everything else moves
        #: through :meth:`_bump` so concurrent front ends never lose an
        #: increment.
        self._stats_lock = threading.Lock()
        self._tracer = tracer
        self._metrics = metrics
        self._blocking_hist: Optional[Histogram] = None
        self._query_hist: Optional[Histogram] = None
        if metrics is not None:
            self._blocking_hist = metrics.histogram("submission.blocking_s")
            self._query_hist = metrics.histogram("submission.query_s")
            metrics.register_source("submission", self.stats_snapshot)
        self._spec_lock = threading.Lock()
        #: Unsettled speculative handles (strong refs: a handle dropped
        #: by the application must still be abandonable by the drain).
        self._speculations: Set[SpeculativeHandle] = set()
        #: Per-site speculation ledger, keyed by handle label (see
        #: :class:`SiteSpeculationStats`); guarded by ``_spec_lock``.
        self._site_ledger: Dict[str, SiteSpeculationStats] = {}

    #: Ledger high-water mark: past this many unsettled speculations,
    #: completed-but-unclaimed handles are swept as wasted so a
    #: long-lived connection that never fetches its guard-false handles
    #: cannot grow the ledger without bound.
    SPECULATION_HIGH_WATER = 1024

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def executor(self):
        return self._executor

    @property
    def tracer(self) -> Optional[Tracer]:
        return self._tracer

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        return self._metrics

    def _bump(self, field: str, n: int = 1) -> None:
        """Increment one non-speculation stats counter under its lock."""
        with self._stats_lock:
            setattr(self.stats, field, getattr(self.stats, field) + n)

    # ------------------------------------------------------------------
    # blocking path
    # ------------------------------------------------------------------
    def call(
        self,
        invoke: Callable[[], Any],
        key: Any = None,
        tables: Optional[Iterable[str]] = None,
        still_valid: Optional[Callable[[], bool]] = None,
        span: Optional[Span] = None,
    ) -> Any:
        """Submit and wait in the calling thread.

        A cache hit pays no round trip; concurrent identical calls share
        one in-flight execution (the follower blocks on the owner's
        future instead of re-executing).  ``still_valid`` is re-checked
        at publication time: if the read may have overlapped a data
        change, waiters are served but the value is not retained.
        """
        self._bump("blocking_calls")
        started = time.perf_counter()
        try:
            lease = self._acquire_traced(key, tables, span)
            if lease is None:
                return invoke()
            if lease.is_hit:
                self._bump("cache_hits")
                return lease.value
            if lease.is_follower:
                self._bump("cache_hits")
                return lease.wait()
            try:
                result = invoke()
            except BaseException as exc:
                self._cache.fail(lease, exc)
                raise
            retain = still_valid is None or still_valid()
            return self._cache.complete(lease, result, retain=retain)
        except BaseException as exc:
            if span is not None:
                span.set("error", repr(exc))
            raise
        finally:
            if self._blocking_hist is not None:
                self._blocking_hist.observe(time.perf_counter() - started)
            if span is not None:
                span.end()

    # ------------------------------------------------------------------
    # non-blocking path
    # ------------------------------------------------------------------
    def dispatch(
        self,
        invoke: Callable[[], Any],
        key: Any = None,
        tables: Optional[Iterable[str]] = None,
        label: str = "",
        on_dispatch: Optional[Callable[[], None]] = None,
        cleanup: Optional[Callable[[], None]] = None,
        still_valid: Optional[Callable[[], bool]] = None,
        span: Optional[Span] = None,
    ) -> QueryHandle:
        """Submit without waiting; returns a handle.

        Cache hits return an already-completed handle (no thread hop);
        followers share the owner's in-flight future.  ``on_dispatch``
        runs only when a real dispatch happens (overhead charges,
        transaction in-flight accounting); ``cleanup`` is its guaranteed
        counterpart, run when the dispatched task finishes — or
        immediately, if the dispatch itself fails.
        """
        self._bump("async_submits")
        lease = self._acquire_traced(key, tables, span)
        future = self._lease_future(lease)
        if future is not None:
            return QueryHandle(future, label=label, span=span)
        handle = self._run_task(
            invoke, lease, label, on_dispatch, cleanup, still_valid
        )
        handle.span = span
        return handle

    def _lease_future(self, lease) -> Optional["Future"]:
        """Already-resolved future for a cache hit, or the owner's
        in-flight future for a single-flight follower — the lease
        outcomes that avoid a dispatch, counted as cache hits.  None
        when a real dispatch is needed (no lease, or this caller owns
        it).  Shared by :meth:`dispatch` and :meth:`speculate` so the
        lease protocol cannot diverge between the two paths.
        """
        if lease is None:
            return None
        if lease.is_hit:
            self._bump("cache_hits")
            return resolved_future(lease.value)
        if lease.is_follower:
            self._bump("cache_hits")
            return lease.future
        return None

    def _run_task(
        self,
        invoke: Callable[[], Any],
        lease,
        label: str,
        on_dispatch: Optional[Callable[[], None]],
        cleanup: Optional[Callable[[], None]],
        still_valid: Optional[Callable[[], bool]],
    ) -> QueryHandle:
        """Build and submit the executor task for a real dispatch
        (shared by :meth:`dispatch` and :meth:`speculate`)."""
        if on_dispatch is not None:
            on_dispatch()

        def task() -> Any:
            try:
                try:
                    result = invoke()
                except BaseException as exc:
                    if lease is not None:
                        self._cache.fail(lease, exc)
                    raise
                if lease is not None:
                    retain = still_valid is None or still_valid()
                    self._cache.complete(lease, result, retain=retain)
                return result
            finally:
                if cleanup is not None:
                    cleanup()

        try:
            return self._executor.submit(task, label=label)
        except BaseException as exc:
            # Never strand single-flight followers (or a transaction's
            # in-flight count) on a submission that could not be queued.
            if cleanup is not None:
                cleanup()
            if lease is not None:
                self._cache.fail(lease, exc)
            raise

    # ------------------------------------------------------------------
    # speculative path
    # ------------------------------------------------------------------
    def speculate(
        self,
        invoke: Callable[[], Any],
        key: Any = None,
        tables: Optional[Iterable[str]] = None,
        label: str = "",
        on_dispatch: Optional[Callable[[], None]] = None,
        cleanup: Optional[Callable[[], None]] = None,
        still_valid: Optional[Callable[[], bool]] = None,
        span: Optional[Span] = None,
    ) -> SpeculativeHandle:
        """Dispatch a read whose handle may be dropped (see the module
        docstring's speculation contract).

        The cache protocol is identical to :meth:`dispatch` — a
        speculation that races a real identical read single-flights with
        it, and its completed value publishes through the same validity
        checks — only the handle type, the stats and the settle ledger
        differ.
        """
        lease = self._acquire_traced(key, tables, span)
        future = self._lease_future(lease)
        if future is not None:
            handle = SpeculativeHandle(future, label=label, pipeline=self)
            handle.span = span
            return self._track(handle)
        inner = self._run_task(
            invoke, lease, label, on_dispatch, cleanup, still_valid
        )
        handle = SpeculativeHandle(
            inner.future,
            label=label,
            pipeline=self,
            cancellable=(lease is None and cleanup is None),
        )
        handle.span = span
        return self._track(handle)

    def speculate_failed(
        self, error: BaseException, label: str = ""
    ) -> SpeculativeHandle:
        """Record a speculation that failed before dispatch.

        Owns the same counting + ledger contract as :meth:`speculate`
        (the hits+wasted==speculations invariant), for callers whose
        request could not even be resolved: the error surfaces at fetch
        time, or vanishes if the handle is abandoned.
        """
        return self._track(
            SpeculativeHandle(
                failed_handle(error).future, label=label, pipeline=self
            )
        )

    def abandon(self, handle: SpeculativeHandle) -> bool:
        """Settle a speculative handle as wasted (see ``abandon``)."""
        return handle.abandon()

    #: Overall bound on the drain's wait.  A speculation that joined
    #: another pipeline's in-flight load as a single-flight follower may
    #: never complete if the owning pipeline was torn down without its
    #: cache fail path running; connection close must not hang on it.
    SPECULATION_DRAIN_TIMEOUT_S = 30.0

    def drain_speculations(
        self, wait: bool = True, timeout_s: Optional[float] = None
    ) -> int:
        """Abandon every unsettled speculation; returns how many.

        ``wait=True`` (the default; used by connection close) blocks
        until the non-cancelled ones finish, so no executor work
        outlives the caller.  The wait shares one deadline, ``timeout_s``
        (default :attr:`SPECULATION_DRAIN_TIMEOUT_S`) from entry, across
        every handle: this pipeline's own dispatches run on its bounded
        executor and finish, but handles following another pipeline's
        in-flight loads may never resolve, and close must not stack
        their waits.  Failures and timeouts of abandoned speculations
        are swallowed — nobody is left to observe them.
        """
        if timeout_s is None:
            timeout_s = self.SPECULATION_DRAIN_TIMEOUT_S
        with self._spec_lock:
            pending = list(self._speculations)
        for handle in pending:
            handle.abandon()
        if wait:
            deadline = time.monotonic() + timeout_s
            for handle in pending:
                try:
                    handle.exception(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
                except (CancelledError, FutureTimeoutError):
                    pass
        return len(pending)

    def site_stats(self) -> Dict[str, SiteSpeculationStats]:
        """Snapshot of the per-site speculation ledger.

        One entry per distinct speculation label; counters move in
        lockstep with the pipeline-wide ``speculation_*`` stats (same
        lock).  Read-only: the returned entries are copies.
        """
        with self._spec_lock:
            return {
                site: replace(entry)
                for site, entry in self._site_ledger.items()
            }

    def _site_entry(self, handle: SpeculativeHandle) -> SiteSpeculationStats:
        """This handle's ledger entry (caller holds ``_spec_lock``)."""
        return self._site_ledger.setdefault(
            handle.label, SiteSpeculationStats()
        )

    def _track(self, handle: SpeculativeHandle) -> SpeculativeHandle:
        with self._spec_lock:
            # The dispatch counter moves with the ledger, under the same
            # lock as the hit/waste counters, so the invariant
            # speculations == hits + wasted + unsettled never
            # transiently misreads under concurrent front ends.
            self.stats.speculations += 1
            self._site_entry(handle).speculations += 1
            self._speculations.add(handle)
            excess = len(self._speculations) - self.SPECULATION_HIGH_WATER
            stale: list = []
            if excess > 0:
                # Sweep only the *oldest* completed handles (freshly
                # issued ones may be about to be fetched — abandoning
                # them would misreport profitable speculation as waste).
                done = [
                    h
                    for h in self._speculations
                    if h is not handle and h.done()
                ]
                done.sort(key=lambda h: h.age_s, reverse=True)
                stale = done[:excess]
        for old in stale:
            # Completed long ago and never claimed: almost certainly a
            # guard-false handle the generated code dropped.  Settling
            # it as wasted bounds the ledger; a later fetch still
            # returns the result, and its claim reclassifies the settle
            # as a hit (the consumer was slow, not absent).
            self._settle_speculation(old, hit=False, swept=True)
        return handle

    def _settle_speculation(
        self, handle: SpeculativeHandle, hit: bool, swept: bool = False
    ) -> bool:
        with self._spec_lock:
            if handle not in self._speculations:
                if hit and handle._swept:
                    # The high-water sweep misjudged a merely-slow
                    # consumer as absent; move the settle from waste to
                    # hit so SpeculationPolicy-relevant rates stay true.
                    handle._swept = False
                    handle._wasted = False
                    self.stats.speculation_wasted -= 1
                    self.stats.speculation_hits += 1
                    site = self._site_entry(handle)
                    site.wasted -= 1
                    site.hits += 1
                    if handle.span is not None:
                        # The recorded span stays truthful too (the
                        # buffer holds the object, not a serialization).
                        handle.span.set("wasted", False)
                return False  # already settled (fetch/abandon race)
            self._speculations.discard(handle)
            site = self._site_entry(handle)
            if hit:
                self.stats.speculation_hits += 1
                site.hits += 1
            else:
                self.stats.speculation_wasted += 1
                site.wasted += 1
                handle._wasted = True
                if swept:
                    handle._swept = True
        span = handle.span
        if span is not None:
            # The settle is the last trace event a wasted speculation
            # ever sees (nobody will fetch it), so end its root here;
            # a hit's root ends at fetch / note_completion as usual.
            span.set("wasted", not hit)
            if not hit:
                span.end()
        if not hit and handle.cancellable:
            # Still-queued and invisible to anyone else: skip the round
            # trip entirely.  A task already running just completes.
            handle.future.cancel()
        return True

    # ------------------------------------------------------------------
    def fetch(self, handle: QueryHandle) -> Any:
        """Blocking fetch: the paper's ``fetchResult``.

        Consuming a speculative handle settles it as a hit — the guard
        turned out true and the speculated work was wanted.
        """
        self._bump("fetches")
        if isinstance(handle, SpeculativeHandle):
            handle.claim()
        span = getattr(handle, "span", None)
        fetch_span = span.child("fetch") if span is not None else None
        try:
            result = handle.result()
        except BaseException as exc:
            if span is not None:
                span.set("error", repr(exc))
            raise
        finally:
            if fetch_span is not None:
                fetch_span.end()
            if span is not None:
                span.end()
            if self._query_hist is not None:
                self._query_hist.observe(handle.age_s)
        return result

    def note_completion(self, handle: QueryHandle) -> None:
        """Record a handle consumed outside :meth:`fetch`.

        The asyncio front end awaits the wrapped future directly (no
        blocking fetch ever runs), so it calls this from a done
        callback: the submit→result latency lands in the query
        histogram and the root span is closed.
        """
        if self._query_hist is not None:
            self._query_hist.observe(handle.age_s)
        span = getattr(handle, "span", None)
        if span is not None:
            span.end()

    # ------------------------------------------------------------------
    def _acquire(self, key: Any, tables: Optional[Iterable[str]]):
        if key is None or self._cache is None:
            return None
        return self._cache.acquire(key, tables)

    def _acquire_traced(
        self, key: Any, tables: Optional[Iterable[str]], span: Optional[Span]
    ):
        """:meth:`_acquire` plus a ``cache`` child span recording the
        lookup outcome (also mirrored onto the root as ``cache:``)."""
        if span is None:
            return self._acquire(key, tables)
        with span.child("cache") as cache_span:
            lease = self._acquire(key, tables)
            if lease is None:
                outcome = "bypass"
            elif lease.is_hit:
                outcome = "hit"
            elif lease.is_follower:
                outcome = "follower"
            else:
                outcome = "miss"
            cache_span.set("outcome", outcome)
        span.set("cache", outcome)
        return lease

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, Any]:
        """Every counter of this pipeline as one plain dict.

        Non-speculation counters are read under ``_stats_lock``, the
        speculation counters and per-site ledger under ``_spec_lock``
        (their owning lock), so the snapshot never tears an invariant.
        """
        with self._stats_lock:
            snap: Dict[str, Any] = asdict(self.stats)
        with self._spec_lock:
            for field in (
                "speculations",
                "speculation_hits",
                "speculation_wasted",
            ):
                snap[field] = getattr(self.stats, field)
            snap["speculation_sites"] = {
                site: {
                    "speculations": entry.speculations,
                    "hits": entry.hits,
                    "wasted": entry.wasted,
                    "hit_rate": entry.hit_rate,
                }
                for site, entry in self._site_ledger.items()
            }
        return snap


class _PendingDispatch:
    """One enqueued submit awaiting a coalesced flush."""

    __slots__ = (
        "bound",
        "future",
        "lease",
        "still_valid",
        "handle",
        "span",
        "queue_span",
    )

    def __init__(self, bound, lease, still_valid) -> None:
        self.bound = bound
        self.future: "Future" = Future()
        self.lease = lease
        self.still_valid = still_valid
        #: The SpeculativeHandle watching this entry, when the submit
        #: was speculative; publication checks its waste state.
        self.handle: Optional[SpeculativeHandle] = None
        #: Root ``query`` span of the submit (None unless tracing).
        self.span: Optional[Span] = None
        #: ``coalesce`` child span covering queue residency: started at
        #: enqueue, ended by the flusher with the realized batch size.
        self.queue_span: Optional[Span] = None


class DispatchCoalescer:
    """Set-oriented dispatch: merge outstanding same-statement submits
    into one batched server call.

    When several submits of the same prepared statement are queued
    behind the executor — exactly what a prefetch pass hoisting a
    submit loop, or a burst of speculative lifts, produces — executing
    them one per worker pays N round trips and N per-statement server
    costs.  The coalescer instead enqueues each submit as a pending
    entry keyed by ``statement_id`` plus one *flusher* task; whichever
    flusher runs first drains up to ``window`` entries and answers them
    with a single :meth:`DatabaseServer.submit_prepared_batch` call
    (one round-trip charge, one statement execution via the
    binding-demux operator), demultiplexing per-binding outcomes back
    to the individual handle futures.

    Properties preserved from the plain dispatch path:

    * **cache protocol** — every submit still runs the cache plan
      first: hits and single-flight followers resolve immediately and
      never reach the queue; owners carry their lease into the entry
      and publish per ``(key, tables)`` with the same validity checks,
      so a stale or failed binding never enters the cache;
    * **fault isolation** — a binding that fails mid-batch fails only
      its own handle (the server returns per-binding outcomes);
    * **speculation semantics** — a coalesced speculation abandoned
      while still queued is dropped from the batch outright (its lease,
      if any, is failed so followers re-dispatch), and one that settles
      as waste never publishes its value to the cache;
    * **laziness** — no timers, no added latency: a submit that reaches
      an idle worker dispatches alone; batches only form while workers
      are busy, which is precisely when merging pays.

    Only autocommit reads are coalesced; transactional reads and writes
    take the plain path (their lock and invalidation semantics are
    per-statement).
    """

    #: Default cap on bindings merged into one batch.
    DEFAULT_WINDOW = 16

    def __init__(
        self, pipeline: "SubmissionPipeline", window: Optional[int] = None
    ) -> None:
        if window is None:
            window = self.DEFAULT_WINDOW
        if window < 2:
            raise ValueError(f"coalesce window must be >= 2, got {window}")
        self._pipeline = pipeline
        self._window = window
        self._lock = threading.Lock()
        #: (backend identity, statement_id) -> (prepared, FIFO of
        #: pending entries).  Statement ids are per-backend counters, so
        #: the id alone would collide across two live backends and merge
        #: different statements — or the same text bound for different
        #: stores — into one batch; the backend identity in the key
        #: guarantees a coalesced batch never executes against the wrong
        #: store.
        self._pending: Dict[
            tuple, Tuple[PreparedStatement, Deque[_PendingDispatch]]
        ] = {}

    def _batch_key(self, prepared: PreparedStatement) -> tuple:
        origin = getattr(prepared, "origin", None)
        if origin is None:
            origin = self._pipeline._server
        return (id(origin), prepared.statement_id)

    @property
    def window(self) -> int:
        return self._window

    # ------------------------------------------------------------------
    # entry points (called by SubmissionPipeline for autocommit reads)
    # ------------------------------------------------------------------
    def submit(
        self,
        prepared: PreparedStatement,
        bound: tuple,
        span: Optional[Span] = None,
    ) -> QueryHandle:
        calls = self._pipeline._calls
        calls._bump("async_submits")
        label = prepared.sql[:40]
        entry, future = self._admit(prepared, bound, span)
        if entry is None:
            return QueryHandle(future, label=label, span=span)  # hit / follower
        entry.span = span
        self._enqueue(prepared, entry)
        return QueryHandle(entry.future, label=label, span=span)

    def speculate(
        self,
        prepared: PreparedStatement,
        bound: tuple,
        label: str,
        span: Optional[Span] = None,
    ) -> SpeculativeHandle:
        calls = self._pipeline._calls
        entry, future = self._admit(prepared, bound, span)
        if entry is None:
            handle = SpeculativeHandle(future, label=label, pipeline=calls)
            handle.span = span
            return calls._track(handle)
        handle = SpeculativeHandle(
            entry.future,
            label=label,
            pipeline=calls,
            # A queued lease-less entry is invisible to everyone else:
            # abandoning it may cancel the future outright and the
            # flusher will drop it from the batch.  A leased entry must
            # run — single-flight followers may be real reads.
            cancellable=(entry.lease is None),
        )
        handle.span = span
        entry.handle = handle
        entry.span = span
        self._enqueue(prepared, entry)
        return calls._track(handle)

    # ------------------------------------------------------------------
    # queueing
    # ------------------------------------------------------------------
    def _admit(
        self,
        prepared: PreparedStatement,
        bound: tuple,
        span: Optional[Span] = None,
    ):
        """Run the cache plan; returns ``(entry, None)`` for a real
        dispatch or ``(None, future)`` when a hit/follower resolves the
        request without one."""
        calls = self._pipeline._calls
        key, tables, still_valid = self._pipeline._cache_plan(
            prepared, bound, None
        )
        lease = calls._acquire_traced(key, tables, span)
        future = calls._lease_future(lease)
        if future is not None:
            return None, future
        return _PendingDispatch(tuple(bound), lease, still_valid), None

    def _enqueue(
        self, prepared: PreparedStatement, entry: _PendingDispatch
    ) -> None:
        server = self._pipeline._server
        # Every submit still pays the executor hand-off overhead in the
        # submitting thread, exactly like the plain dispatch path.
        server.meter.charge("queue", server.profile.send_overhead_s)
        if entry.span is not None:
            entry.queue_span = entry.span.child("coalesce")
        batch_key = self._batch_key(prepared)
        with self._lock:
            group = self._pending.get(batch_key)
            if group is None:
                group = (prepared, deque())
                self._pending[batch_key] = group
            group[1].append(entry)
        try:
            self._pipeline.executor.submit(
                lambda: self._flush(batch_key),
                label=f"coalesce:{prepared.sql[:32]}",
            )
        except BaseException as exc:
            # Mirror the plain path: never strand single-flight
            # followers on a submission that could not be queued.  Only
            # unwind if no concurrent flusher already claimed the entry.
            if self._discard(batch_key, entry):
                if entry.lease is not None:
                    self._pipeline.cache.fail(entry.lease, exc)
            raise

    def _discard(self, batch_key: tuple, entry: _PendingDispatch) -> bool:
        with self._lock:
            group = self._pending.get(batch_key)
            if group is None:
                return False
            try:
                group[1].remove(entry)
            except ValueError:
                return False
            if not group[1]:
                del self._pending[batch_key]
            return True

    # ------------------------------------------------------------------
    # flushing (runs on executor workers)
    # ------------------------------------------------------------------
    def _flush(self, batch_key: tuple) -> int:
        prepared, batch = self._take(batch_key)
        if batch:
            self._execute(prepared, batch)
        return len(batch)

    def _take(self, batch_key: tuple):
        with self._lock:
            group = self._pending.get(batch_key)
            if group is None:
                return None, []
            prepared, queue = group
            count = min(len(queue), self._window)
            batch = [queue.popleft() for _ in range(count)]
            if not queue:
                del self._pending[batch_key]
            return prepared, batch

    def _execute(
        self, prepared: PreparedStatement, entries: List[_PendingDispatch]
    ) -> None:
        pipeline = self._pipeline
        live: List[_PendingDispatch] = []
        for entry in entries:
            # PENDING -> RUNNING bars late cancellation, so completion
            # below cannot race a cancel; a cancelled entry (abandoned
            # queued speculation, or an explicit handle.cancel) drops
            # out of the batch here.
            if entry.future.set_running_or_notify_cancel():
                live.append(entry)
            else:
                if entry.queue_span is not None:
                    entry.queue_span.set("cancelled", True).end()
                if entry.lease is not None:
                    # Never strand followers of a cancelled owner.
                    pipeline.cache.fail(entry.lease, CancelledError())
        if not live:
            return
        for entry in live:
            if entry.queue_span is not None:
                entry.queue_span.set("batch_size", len(live)).end()
        if len(live) == 1:
            entry = live[0]
            try:
                result = pipeline._round_trip(
                    prepared, entry.bound, None, span=entry.span
                )
            except BaseException as exc:
                self._fail(entry, exc)  # surfaces at the handle's fetch
            else:
                self._complete(entry, result)
            return
        calls = pipeline._calls
        calls._bump("coalesced_batches")
        calls._bump("coalesced_queries", len(live))
        calls._bump("round_trips_saved", len(live) - 1)
        # One batched ``dispatch`` span covers the whole server call.  It
        # is the one deliberate deviation from a strict per-query tree:
        # it starts its own trace, links every member's root, and each
        # member root points back (``dispatch_span``), so N trees share
        # the single server-execute span without any of them owning it.
        batch_span: Optional[Span] = None
        tracer = calls.tracer
        if tracer is not None and tracer.enabled:
            roots = [entry.span for entry in live if entry.span is not None]
            if roots:
                batch_span = tracer.start(
                    "dispatch",
                    batched=True,
                    bindings=len(live),
                    statement=prepared.sql[:40],
                )
                for root in roots:
                    batch_span.link(root.span_id)
                    root.set("coalesced", True)
                    root.set("dispatch_span", batch_span.span_id)
        # The batch key pinned every entry to one backend; route the
        # batched call to the *statement's* backend, never another store
        # that happens to share the pipeline.
        server = getattr(prepared, "origin", None) or pipeline._server
        rtt = server.profile.network_rtt_s
        if rtt:
            server.meter.charge("network", rtt)  # ONE round trip, N queries
        try:
            outcomes = server.submit_prepared_batch(
                prepared,
                [entry.bound for entry in live],
                span=batch_span,
                executor=pipeline.executor_kind,
            ).result()
        except BaseException as exc:
            if batch_span is not None:
                batch_span.set("error", repr(exc)).end()
            for entry in live:
                self._fail(entry, exc)
            return
        finally:
            if batch_span is not None:
                batch_span.end()
        for entry, outcome in zip(live, outcomes):
            if isinstance(outcome, BaseException):
                self._fail(entry, outcome)
            else:
                self._complete(entry, outcome)

    def _complete(self, entry: _PendingDispatch, result: Any) -> None:
        if entry.lease is not None:
            retain = entry.still_valid is None or entry.still_valid()
            if entry.handle is not None and entry.handle.wasted:
                # A speculation that settled as waste never publishes:
                # followers are served, the value is not retained.
                retain = False
            self._pipeline.cache.complete(entry.lease, result, retain=retain)
        entry.future.set_result(result)

    def _fail(self, entry: _PendingDispatch, error: BaseException) -> None:
        if entry.lease is not None:
            self._pipeline.cache.fail(entry.lease, error)
        entry.future.set_exception(error)


class SubmissionPipeline:
    """The SQL submission pipeline over one :class:`DatabaseServer`.

    Owns statement normalization, the transaction rules from the
    paper's Discussion section, the simulated network charges, and —
    through its inner :class:`CallPipeline` — the cache protocol and
    dispatch.  Constructing a pipeline with a cache registers that cache
    with the server for write-driven invalidation broadcasts.
    """

    def __init__(
        self,
        server: DatabaseServer,
        executor,
        cache: Optional[ResultCache] = None,
        coalesce: bool = False,
        coalesce_window: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        executor_kind: Optional[str] = None,
    ) -> None:
        self._server = server
        self._executor_kind = server.resolve_executor(executor_kind)
        self._calls = CallPipeline(executor, cache, tracer=tracer, metrics=metrics)
        #: Set-oriented dispatch (off by default): autocommit reads are
        #: routed through a :class:`DispatchCoalescer` that merges
        #: same-statement submits queued behind the executor into one
        #: batched server call.
        self._coalescer = (
            DispatchCoalescer(self, window=coalesce_window) if coalesce else None
        )
        if cache is not None:
            server.register_cache(cache)

    @property
    def coalescer(self) -> Optional[DispatchCoalescer]:
        """The set-oriented dispatch coalescer, when enabled."""
        return self._coalescer

    @property
    def server(self) -> DatabaseServer:
        return self._server

    @property
    def executor(self):
        return self._calls.executor

    @property
    def executor_kind(self) -> str:
        """The server-side execution engine this pipeline requests:
        ``"columnar"`` or ``"row"``."""
        return self._executor_kind

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._calls.cache

    @property
    def stats(self) -> SubmissionStats:
        return self._calls.stats

    @property
    def tracer(self) -> Optional[Tracer]:
        return self._calls.tracer

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        return self._calls.metrics

    def stats_snapshot(self) -> Dict[str, Any]:
        """Every pipeline counter (and the per-site speculation ledger)
        as one plain dict — see :meth:`CallPipeline.stats_snapshot`."""
        return self._calls.stats_snapshot()

    def note_completion(self, handle: QueryHandle) -> None:
        """Record a handle consumed outside :meth:`fetch` (asyncio
        front end) — see :meth:`CallPipeline.note_completion`."""
        self._calls.note_completion(handle)

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def _trace_root(
        self,
        prepared: PreparedStatement,
        bound: tuple,
        mode: str,
        site: Optional[str] = None,
    ) -> Optional[Span]:
        """Root ``query`` span for one request — None unless tracing is
        enabled, so the disabled-path cost is one attribute test."""
        tracer = self._calls.tracer
        if tracer is None or not tracer.enabled:
            return None
        span = tracer.start("query", sql=prepared.sql, mode=mode)
        if bound:
            span.set("params", repr(bound)[:80])
        if site is not None:
            span.set("site", site)
        return span

    # ------------------------------------------------------------------
    # normalization
    # ------------------------------------------------------------------
    def resolve(self, query, params: Sequence) -> Tuple[PreparedStatement, tuple]:
        """Normalize any accepted query form to ``(prepared, bound)``.

        Accepts raw SQL text or a client-side prepared query (anything
        exposing ``server_statement`` / ``snapshot_params``); bind state
        is snapshotted here, so rebinding after submit is safe.
        """
        statement = getattr(query, "server_statement", None)
        if statement is not None:
            bound = tuple(params) if params else query.snapshot_params()
            origin = getattr(statement, "origin", None)
            if origin is not None and origin is not self._server:
                # The statement was prepared on a *different* backend
                # (two backends can be live in one process): re-prepare
                # on ours.  Statement ids are per-backend counters, so
                # forwarding the foreign handle would execute a
                # same-numbered stranger — or hand the coalescer a batch
                # pointed at the wrong store.
                statement = self._server.prepare(statement.sql)
            return statement, bound
        if isinstance(query, str):
            return self._server.prepare(query), tuple(params)
        raise DatabaseError(f"not a query: {query!r}")

    # ------------------------------------------------------------------
    # the three primitives
    # ------------------------------------------------------------------
    def execute(
        self, query, params: Sequence = (), txn: Optional[Transaction] = None
    ) -> QueryResult:
        """Submit and wait: the paper's ``executeQuery``."""
        prepared, bound = self.resolve(query, params)
        key, tables, still_valid = self._cache_plan(prepared, bound, txn)
        root = self._trace_root(prepared, bound, "execute")
        return self._calls.call(
            lambda: self._round_trip(prepared, bound, txn, span=root),
            key=key,
            tables=tables,
            still_valid=still_valid,
            span=root,
        )

    def submit(
        self, query, params: Sequence = (), txn: Optional[Transaction] = None
    ) -> QueryHandle:
        """Non-blocking submit: the paper's ``submitQuery``.

        Returns immediately with a handle; a cache hit comes back
        already resolved, otherwise one executor worker pays the round
        trip.
        """
        if txn is not None:
            # Discussion-section rule (DESIGN.md): asynchronous *reads*
            # may overlap an open transaction — they run under its
            # shared locks — but asynchronous *updates* are rejected
            # outright: their failures would be observed after commit
            # decisions.
            prepared, bound = self.resolve(query, params)
            if is_write(prepared.ast):
                raise TransactionStateError(
                    "asynchronous updates inside an explicit transaction "
                    "are not supported; commit first or use blocking "
                    "execute_update"
                )
        else:
            try:
                prepared, bound = self.resolve(query, params)
            except Exception as exc:
                # Observer-model contract: submission problems surface
                # at fetch_result, in iteration order.
                self._calls._bump("async_submits")
                return failed_handle(exc)
            if self._coalescer is not None and not is_write(prepared.ast):
                # Set-oriented dispatch: autocommit reads may merge with
                # other outstanding submits of the same statement.
                root = self._trace_root(prepared, bound, "submit")
                return self._coalescer.submit(prepared, bound, span=root)

        root = self._trace_root(prepared, bound, "submit")
        return self._calls.dispatch(
            lambda: self._round_trip(prepared, bound, txn, span=root),
            span=root,
            **self._dispatch_args(prepared, bound, txn),
        )

    def _dispatch_args(
        self,
        prepared: PreparedStatement,
        bound: tuple,
        txn,
        label: Optional[str] = None,
    ):
        """The shared dispatch wiring of :meth:`submit` and
        :meth:`speculate`: send-overhead charge, transaction in-flight
        accounting, and the cache plan — one place, two entry points.
        ``label`` overrides the statement-text default (speculations
        carry their call-site label, which keys the per-site ledger)."""

        def on_dispatch() -> None:
            self._server.meter.charge(
                "queue", self._server.profile.send_overhead_s
            )
            if txn is not None:
                txn.enter_async()

        key, tables, still_valid = self._cache_plan(prepared, bound, txn)
        return dict(
            key=key,
            tables=tables,
            label=label if label is not None else prepared.sql[:40],
            on_dispatch=on_dispatch,
            cleanup=(txn.exit_async if txn is not None else None),
            still_valid=still_valid,
        )

    def fetch(self, handle: QueryHandle) -> QueryResult:
        """Blocking fetch: the paper's ``fetchResult``."""
        return self._calls.fetch(handle)

    # ------------------------------------------------------------------
    # speculation
    # ------------------------------------------------------------------
    def speculate(
        self,
        query,
        params: Sequence = (),
        txn: Optional[Transaction] = None,
        site: Optional[str] = None,
    ) -> "SpeculativeHandle":
        """Speculative submit: a read whose consumer may never run.

        Same request path as :meth:`submit` (cache single-flight,
        executor dispatch, publication validity checks), but the handle
        is tagged and tracked until fetched (a *hit*) or abandoned (a
        *waste*) — see the module docstring's speculation contract.
        ``site`` labels the call site for the per-site speculation
        ledger (:meth:`site_stats`); it defaults to the statement text.

        Writes are rejected outright: speculatively executing a write
        would change database state the original program might never
        have changed.  Inside an explicit transaction the speculation
        runs like any asynchronous read — under the transaction's
        shared locks, bypassing the cache — so an uncommitted value can
        never be published.
        """
        try:
            prepared, bound = self.resolve(query, params)
        except Exception as exc:
            # Mirror submit's observer-model contract: resolution
            # problems surface at fetch time (or vanish if abandoned).
            return self._calls.speculate_failed(exc, label=site or "")
        if is_write(prepared.ast):
            raise DatabaseError(
                "refusing to speculate a write statement; speculation is "
                "read-only by contract"
            )
        label = site if site is not None else prepared.sql[:40]
        root = self._trace_root(prepared, bound, "speculate", site=label)
        if self._coalescer is not None and txn is None:
            return self._coalescer.speculate(prepared, bound, label, span=root)
        return self._calls.speculate(
            lambda: self._round_trip(prepared, bound, txn, span=root),
            span=root,
            **self._dispatch_args(prepared, bound, txn, label=label),
        )

    def site_stats(self) -> Dict[str, SiteSpeculationStats]:
        """Per-call-site speculation ledger (see
        :meth:`CallPipeline.site_stats`)."""
        return self._calls.site_stats()

    def abandon(self, handle: "SpeculativeHandle") -> bool:
        """Settle a speculative handle as wasted (idempotent)."""
        return self._calls.abandon(handle)

    def drain_speculations(
        self, wait: bool = True, timeout_s: Optional[float] = None
    ) -> int:
        """Abandon every unsettled speculation (connection close calls
        this so dropped handles never leak executor work); the wait
        shares one overall deadline — see
        :meth:`CallPipeline.drain_speculations`."""
        return self._calls.drain_speculations(wait=wait, timeout_s=timeout_s)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _round_trip(
        self,
        prepared: PreparedStatement,
        bound: tuple,
        txn: Optional[Transaction],
        span: Optional[Span] = None,
    ) -> QueryResult:
        """One full network round trip plus server-side execution.

        ``span`` is the request's root span: the round trip appears as
        a ``dispatch`` child, and the server hangs its ``server.execute``
        span under that (the span object rides the submit call across
        the thread boundary — no ambient context to lose).
        """
        rtt = self._server.profile.network_rtt_s
        if rtt:
            self._server.meter.charge("network", rtt)
        dispatch_span = span.child("dispatch") if span is not None else None
        try:
            return self._server.submit_prepared(
                prepared,
                bound,
                txn=txn,
                span=dispatch_span,
                executor=self._executor_kind,
            ).result()
        except BaseException as exc:
            if dispatch_span is not None:
                dispatch_span.set("error", repr(exc))
            raise
        finally:
            if dispatch_span is not None:
                dispatch_span.end()

    _BYPASS = (None, None, None)

    def _cache_plan(
        self, prepared: PreparedStatement, bound: tuple, txn: Optional[Transaction]
    ):
        """``(cache key, read tables, publication validity check)`` for
        this request, all None when the cache must be bypassed.

        Bypassed: writes; unhashable params; reads inside an explicit
        transaction (they run under the transaction's locks and may
        observe its own uncommitted writes, neither of which may leak
        into shared cached results); and reads of tables another
        transaction has uncommitted writes against (the value observed
        may be dirty, and a rollback never broadcasts an invalidation).

        The validity check re-reads the tables' write-version token at
        publication time; every write statement and every rollback undo
        bumps it.  The token is captured *before* the uncommitted-write
        check, so a transactional write landing between the two is
        caught by one or the other — a dirty value can never be
        retained.
        """
        if self.cache is None or txn is not None:
            return self._BYPASS
        if is_write(prepared.ast):
            return self._BYPASS
        try:
            hash(bound)
        except TypeError:
            return self._BYPASS
        tables = tables_of_statement(prepared.ast)
        token = self._server.read_validity(tables)
        if self._server.has_uncommitted_writes(tables):
            return self._BYPASS
        return (
            (prepared.sql, bound),
            tables,
            lambda: self._server.read_validity(tables) == token,
        )
