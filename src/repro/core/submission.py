"""The unified submission core: one cache-aware query path.

Every client runtime used to carry its own copy of the submit/fetch
lifecycle — blocking :meth:`Connection.execute_query`, the thread-pool
``submit_query`` path, and the asyncio front end (which bypassed the
result cache entirely).  This module owns that lifecycle once:

    normalize SQL + params
        → cache lookup (single-flight; hits resolve immediately)
        → dispatch to the :class:`~repro.db.server.DatabaseServer`
        → record stats
        → populate the cache

The front ends differ only in how they *wait*:

* the sync client blocks on :meth:`SubmissionPipeline.execute`;
* :class:`~repro.runtime.handles.QueryHandle` wraps the future returned
  by :meth:`SubmissionPipeline.submit`;
* ``AioQueryHandle`` wraps the same future via ``asyncio.wrap_future``.

A cache hit therefore resolves without a thread (or task) hop in every
runtime: the handle comes back already completed.

Invalidation is **not** handled here.  Writes invalidate server-side:
the pipeline registers its cache with the server
(:meth:`DatabaseServer.register_cache`), and the server broadcasts
per-table invalidations from its write path — inside the
transaction-commit boundary for transactional writes — so a write
through *any* connection (cached, cache-less, or transactional)
invalidates every registered cache.

:class:`CallPipeline` is the transport-agnostic half (cache lookup,
single-flight, dispatch, stats); :class:`SubmissionPipeline` layers the
SQL specifics (statement resolution, transaction rules, network
charges) on top.  Both live here so cache-lookup logic exists in exactly
one module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

from ..db.errors import DatabaseError, TransactionStateError
from ..db.plan import QueryResult
from ..db.server import DatabaseServer, PreparedStatement
from ..db.sql.ast_nodes import is_write
from ..db.txn import Transaction
from ..prefetch.cache import ResultCache
from ..prefetch.tables import tables_of_statement
from ..runtime.handles import QueryHandle, completed_handle, failed_handle


@dataclass
class SubmissionStats:
    """Counters for one pipeline (shared by all its front ends)."""

    blocking_calls: int = 0
    async_submits: int = 0
    fetches: int = 0
    cache_hits: int = 0


class CallPipeline:
    """Transport-agnostic submission core.

    Owns the cache protocol (lookup, single-flight join, populate,
    failure propagation), the dispatch to a bounded
    :class:`~repro.runtime.executor.AsyncExecutor`, and the stats.  The
    *transport* — what a round trip actually is — arrives as the
    ``invoke`` callable; the web-service client reuses this class
    directly with HTTP-shaped invokes.
    """

    def __init__(self, executor, cache: Optional[ResultCache] = None) -> None:
        self._executor = executor
        self._cache = cache
        self.stats = SubmissionStats()

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def executor(self):
        return self._executor

    # ------------------------------------------------------------------
    # blocking path
    # ------------------------------------------------------------------
    def call(
        self,
        invoke: Callable[[], Any],
        key: Any = None,
        tables: Optional[Iterable[str]] = None,
        still_valid: Optional[Callable[[], bool]] = None,
    ) -> Any:
        """Submit and wait in the calling thread.

        A cache hit pays no round trip; concurrent identical calls share
        one in-flight execution (the follower blocks on the owner's
        future instead of re-executing).  ``still_valid`` is re-checked
        at publication time: if the read may have overlapped a data
        change, waiters are served but the value is not retained.
        """
        self.stats.blocking_calls += 1
        lease = self._acquire(key, tables)
        if lease is None:
            return invoke()
        if lease.is_hit:
            self.stats.cache_hits += 1
            return lease.value
        if lease.is_follower:
            self.stats.cache_hits += 1
            return lease.wait()
        try:
            result = invoke()
        except BaseException as exc:
            self._cache.fail(lease, exc)
            raise
        retain = still_valid is None or still_valid()
        return self._cache.complete(lease, result, retain=retain)

    # ------------------------------------------------------------------
    # non-blocking path
    # ------------------------------------------------------------------
    def dispatch(
        self,
        invoke: Callable[[], Any],
        key: Any = None,
        tables: Optional[Iterable[str]] = None,
        label: str = "",
        on_dispatch: Optional[Callable[[], None]] = None,
        cleanup: Optional[Callable[[], None]] = None,
        still_valid: Optional[Callable[[], bool]] = None,
    ) -> QueryHandle:
        """Submit without waiting; returns a handle.

        Cache hits return an already-completed handle (no thread hop);
        followers share the owner's in-flight future.  ``on_dispatch``
        runs only when a real dispatch happens (overhead charges,
        transaction in-flight accounting); ``cleanup`` is its guaranteed
        counterpart, run when the dispatched task finishes — or
        immediately, if the dispatch itself fails.
        """
        self.stats.async_submits += 1
        lease = self._acquire(key, tables)
        if lease is not None:
            if lease.is_hit:
                self.stats.cache_hits += 1
                return completed_handle(lease.value)
            if lease.is_follower:
                self.stats.cache_hits += 1
                return QueryHandle(lease.future, label=label)
        if on_dispatch is not None:
            on_dispatch()

        def task() -> Any:
            try:
                try:
                    result = invoke()
                except BaseException as exc:
                    if lease is not None:
                        self._cache.fail(lease, exc)
                    raise
                if lease is not None:
                    retain = still_valid is None or still_valid()
                    self._cache.complete(lease, result, retain=retain)
                return result
            finally:
                if cleanup is not None:
                    cleanup()

        try:
            return self._executor.submit(task, label=label)
        except BaseException as exc:
            # Never strand single-flight followers (or a transaction's
            # in-flight count) on a submission that could not be queued.
            if cleanup is not None:
                cleanup()
            if lease is not None:
                self._cache.fail(lease, exc)
            raise

    def fetch(self, handle: QueryHandle) -> Any:
        """Blocking fetch: the paper's ``fetchResult``."""
        self.stats.fetches += 1
        return handle.result()

    # ------------------------------------------------------------------
    def _acquire(self, key: Any, tables: Optional[Iterable[str]]):
        if key is None or self._cache is None:
            return None
        return self._cache.acquire(key, tables)


class SubmissionPipeline:
    """The SQL submission pipeline over one :class:`DatabaseServer`.

    Owns statement normalization, the transaction rules from the
    paper's Discussion section, the simulated network charges, and —
    through its inner :class:`CallPipeline` — the cache protocol and
    dispatch.  Constructing a pipeline with a cache registers that cache
    with the server for write-driven invalidation broadcasts.
    """

    def __init__(
        self,
        server: DatabaseServer,
        executor,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self._server = server
        self._calls = CallPipeline(executor, cache)
        if cache is not None:
            server.register_cache(cache)

    @property
    def server(self) -> DatabaseServer:
        return self._server

    @property
    def executor(self):
        return self._calls.executor

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._calls.cache

    @property
    def stats(self) -> SubmissionStats:
        return self._calls.stats

    # ------------------------------------------------------------------
    # normalization
    # ------------------------------------------------------------------
    def resolve(self, query, params: Sequence) -> Tuple[PreparedStatement, tuple]:
        """Normalize any accepted query form to ``(prepared, bound)``.

        Accepts raw SQL text or a client-side prepared query (anything
        exposing ``server_statement`` / ``snapshot_params``); bind state
        is snapshotted here, so rebinding after submit is safe.
        """
        statement = getattr(query, "server_statement", None)
        if statement is not None:
            bound = tuple(params) if params else query.snapshot_params()
            return statement, bound
        if isinstance(query, str):
            return self._server.prepare(query), tuple(params)
        raise DatabaseError(f"not a query: {query!r}")

    # ------------------------------------------------------------------
    # the three primitives
    # ------------------------------------------------------------------
    def execute(
        self, query, params: Sequence = (), txn: Optional[Transaction] = None
    ) -> QueryResult:
        """Submit and wait: the paper's ``executeQuery``."""
        prepared, bound = self.resolve(query, params)
        key, tables, still_valid = self._cache_plan(prepared, bound, txn)
        return self._calls.call(
            lambda: self._round_trip(prepared, bound, txn),
            key=key,
            tables=tables,
            still_valid=still_valid,
        )

    def submit(
        self, query, params: Sequence = (), txn: Optional[Transaction] = None
    ) -> QueryHandle:
        """Non-blocking submit: the paper's ``submitQuery``.

        Returns immediately with a handle; a cache hit comes back
        already resolved, otherwise one executor worker pays the round
        trip.
        """
        if txn is not None:
            # Discussion-section rule (DESIGN.md): asynchronous *reads*
            # may overlap an open transaction — they run under its
            # shared locks — but asynchronous *updates* are rejected
            # outright: their failures would be observed after commit
            # decisions.
            prepared, bound = self.resolve(query, params)
            if is_write(prepared.ast):
                raise TransactionStateError(
                    "asynchronous updates inside an explicit transaction "
                    "are not supported; commit first or use blocking "
                    "execute_update"
                )
        else:
            try:
                prepared, bound = self.resolve(query, params)
            except Exception as exc:
                # Observer-model contract: submission problems surface
                # at fetch_result, in iteration order.
                self.stats.async_submits += 1
                return failed_handle(exc)

        def on_dispatch() -> None:
            self._server.meter.charge(
                "queue", self._server.profile.send_overhead_s
            )
            if txn is not None:
                txn.enter_async()

        key, tables, still_valid = self._cache_plan(prepared, bound, txn)
        return self._calls.dispatch(
            lambda: self._round_trip(prepared, bound, txn),
            key=key,
            tables=tables,
            label=prepared.sql[:40],
            on_dispatch=on_dispatch,
            cleanup=(txn.exit_async if txn is not None else None),
            still_valid=still_valid,
        )

    def fetch(self, handle: QueryHandle) -> QueryResult:
        """Blocking fetch: the paper's ``fetchResult``."""
        return self._calls.fetch(handle)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _round_trip(
        self, prepared: PreparedStatement, bound: tuple, txn: Optional[Transaction]
    ) -> QueryResult:
        """One full network round trip plus server-side execution."""
        rtt = self._server.profile.network_rtt_s
        if rtt:
            self._server.meter.charge("network", rtt)
        return self._server.submit_prepared(prepared, bound, txn=txn).result()

    _BYPASS = (None, None, None)

    def _cache_plan(
        self, prepared: PreparedStatement, bound: tuple, txn: Optional[Transaction]
    ):
        """``(cache key, read tables, publication validity check)`` for
        this request, all None when the cache must be bypassed.

        Bypassed: writes; unhashable params; reads inside an explicit
        transaction (they run under the transaction's locks and may
        observe its own uncommitted writes, neither of which may leak
        into shared cached results); and reads of tables another
        transaction has uncommitted writes against (the value observed
        may be dirty, and a rollback never broadcasts an invalidation).

        The validity check re-reads the tables' write-version token at
        publication time; every write statement and every rollback undo
        bumps it.  The token is captured *before* the uncommitted-write
        check, so a transactional write landing between the two is
        caught by one or the other — a dirty value can never be
        retained.
        """
        if self.cache is None or txn is not None:
            return self._BYPASS
        if is_write(prepared.ast):
            return self._BYPASS
        try:
            hash(bound)
        except TypeError:
            return self._BYPASS
        tables = tables_of_statement(prepared.ast)
        token = self._server.read_validity(tables)
        if self._server.has_uncommitted_writes(tables):
            return self._BYPASS
        return (
            (prepared.sql, bound),
            tables,
            lambda: self._server.read_validity(tables) == token,
        )
