#!/usr/bin/env python3
"""Callback-model dashboard (paper Section II's alternative model).

Aggregates per-region statistics with the *callback* coordination model:
results are processed as they complete, on a single dispatcher thread,
because the aggregation is small and order-insensitive — the exact
situation the paper says the callback model suits.  Also demonstrates
the cost model deciding whether the asynchronous rewrite is worth it.

Run:  python examples/callback_dashboard.py
"""

from __future__ import annotations

import time

from repro import Database, SYS1
from repro.runtime import CallbackDispatcher
from repro.transform import breakeven_iterations, estimate_loop_cost

REGIONS = 48
USERS = 24_000


def build_database() -> Database:
    db = Database(SYS1)
    db.create_table(
        "users", ("user_id", "int"), ("region_id", "int"), ("rating", "int")
    )
    db.create_index("idx_users_region", "users", "region_id")
    db.bulk_load(
        "users",
        ((i, i % REGIONS, (i * 7) % 11 - 5) for i in range(USERS)),
    )
    return db


def main() -> None:
    db = build_database()

    # --- Should we bother transforming?  Ask the cost model. ----------
    estimate = estimate_loop_cost(SYS1, REGIONS, threads=10, server_time_s=80e-6)
    print(
        f"cost model: {REGIONS} iterations -> blocking {estimate.blocking_s * 1e3:.1f}ms, "
        f"async {estimate.async_s * 1e3:.1f}ms "
        f"({'worth it' if estimate.beneficial else 'not worth it'})"
    )
    print(f"cost model: break-even at {breakeven_iterations(SYS1)} iterations\n")

    # --- Blocking version ---------------------------------------------
    with db.connect(async_workers=10) as conn:
        started = time.perf_counter()
        totals = {}
        for region in range(REGIONS):
            count = conn.execute_query(
                "SELECT count(*) FROM users WHERE region_id = ?", [region]
            ).scalar()
            totals[region] = count
        blocking_s = time.perf_counter() - started
    print(f"blocking loop:            {blocking_s * 1e3:7.1f}ms")

    # --- Callback-model version ----------------------------------------
    with db.connect(async_workers=10) as conn:
        started = time.perf_counter()
        callback_totals = {}
        with CallbackDispatcher() as dispatcher:
            for region in range(REGIONS):
                handle = conn.submit_query(
                    "SELECT count(*) FROM users WHERE region_id = ?", [region]
                )
                dispatcher.register(
                    handle,
                    lambda result, region=region: callback_totals.__setitem__(
                        region, result.scalar()
                    ),
                )
            dispatcher.drain()
        callback_s = time.perf_counter() - started
    print(f"callback model (async):   {callback_s * 1e3:7.1f}ms  "
          f"({blocking_s / callback_s:.1f}x)")

    assert callback_totals == totals
    assert sum(totals.values()) == USERS
    top = max(totals, key=totals.get)
    print(f"\nlargest region: {top} with {totals[top]} users "
          f"(checksums match the blocking run)")
    db.close()


if __name__ == "__main__":
    main()
