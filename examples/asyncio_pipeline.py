#!/usr/bin/env python3
"""The observer model on asyncio: coroutines instead of client threads.

The paper coordinates asynchronous query submissions with a client
thread pool (Java's Executor framework).  Python's modern equivalent is
``asyncio`` — and the Rule A output shape (submit loop, fetch loop) maps
one-to-one onto coroutine code.  This example runs Experiment 1's
comment/author loop three ways on the simulated SYS1 server:

1. the original blocking loop (one round trip per iteration),
2. Rule A's two-loop shape written with ``submit_query`` / ``await``,
3. the Section II *callback model* via ``as_completed`` (results
   processed in completion order — fine here because summing is
   commutative).

Run:  python examples/asyncio_pipeline.py
"""

from __future__ import annotations

import asyncio
import time

from repro.db import SYS1
from repro.runtime.aio import aio_connect, as_completed
from repro.workloads import rubis

ITERATIONS = 1500
IN_FLIGHT = 20


def run_blocking(db, comments):
    with db.connect(async_workers=1) as conn:
        started = time.perf_counter()
        authors = rubis.load_comment_authors(conn, list(comments))
        return authors, time.perf_counter() - started


async def run_observer(db, comments):
    """Rule A's two loops, as coroutine code."""
    with aio_connect(db, max_in_flight=IN_FLIGHT) as conn:
        started = time.perf_counter()
        # Loop 1: non-blocking submissions (one record per iteration —
        # the split variable `comment` rides along in the tuple).
        pending = [
            (comment, conn.submit_query(rubis.AUTHOR_SQL, [comment[1]]))
            for comment in comments
        ]
        # Loop 2: blocking fetches in submission order.
        authors = []
        for comment, handle in pending:
            row = await conn.fetch_result(handle)
            authors.append((comment[0], row[0][0], row[0][1]))
        return authors, time.perf_counter() - started


async def run_callbacks(db, comments):
    """Callback model: process whichever result lands first."""
    with aio_connect(db, max_in_flight=IN_FLIGHT) as conn:
        started = time.perf_counter()
        handles = [
            conn.submit_query(rubis.AUTHOR_SQL, [comment[1]])
            for comment in comments
        ]
        ratings_total = 0
        processed = 0
        async for row in as_completed(handles):
            ratings_total += row[0][1]
            processed += 1
        return (processed, ratings_total), time.perf_counter() - started


def main() -> None:
    db = rubis.build_database(SYS1)
    try:
        comments = rubis.comment_batch(db, ITERATIONS)

        print("=" * 70)
        print(f"Experiment 1 loop, {ITERATIONS} iterations, simulated SYS1")
        print("=" * 70)

        blocking_authors, blocking_s = run_blocking(db, comments)
        print(f"blocking loop:                {blocking_s:7.3f}s")

        observer_authors, observer_s = asyncio.run(run_observer(db, comments))
        assert observer_authors == blocking_authors, "results must match"
        print(
            f"asyncio observer model:       {observer_s:7.3f}s"
            f"   ({blocking_s / observer_s:4.1f}x, results identical)"
        )

        (count, total), callback_s = asyncio.run(run_callbacks(db, comments))
        assert count == len(comments)
        assert total == sum(author[2] for author in blocking_authors)
        print(
            f"asyncio callback model:       {callback_s:7.3f}s"
            f"   ({blocking_s / callback_s:4.1f}x, completion order)"
        )

        print()
        print(
            "The observer model keeps results in submission order (needed\n"
            "when later statements depend on them); the callback model\n"
            "processes results as they complete and suits commutative\n"
            "aggregation.  Both overlap all round trips, which is where\n"
            "the speedup comes from."
        )
    finally:
        db.close()


if __name__ == "__main__":
    main()
