#!/usr/bin/env python3
"""Web-service mashup (the paper's Experiment 5).

The same transformation rules rewrite loops of *web-service* calls: a
movie-database client fetches every actor of a director over a
simulated HTTP API (no joins, no batch endpoint — one request per
entity, exactly why such loops hurt).  The actor list itself feeds the
loop, so that call stays blocking; the per-actor lookups overlap.

Run:  python examples/webservice_mashup.py
"""

from __future__ import annotations

import time

from repro import asyncify
from repro.web import WebServiceClient, WebLatency
from repro.workloads import moviegraph


def main() -> None:
    print("building movie graph (directors -> actors -> movies)...")
    service = moviegraph.build_service(
        WebLatency(), directors=12, actors_per_director=20
    )

    transformed = asyncify(moviegraph.collect_filmographies)
    print("transformed loop:")
    print(transformed.__repro_source__)

    # Gather the full actor set (240 iterations, as in the paper).
    with WebServiceClient(service, async_workers=1) as probe:
        actor_ids = []
        for d in range(12):
            actor_ids.extend(moviegraph.director_actors(probe, f"dir{d}"))
    print(f"{len(actor_ids)} actors to look up\n")

    with WebServiceClient(service, async_workers=1) as client:
        started = time.perf_counter()
        baseline = moviegraph.collect_filmographies(client, list(actor_ids))
        base_s = time.perf_counter() - started
    print(f"original (blocking HTTP)              {base_s:7.3f}s")

    for threads in (5, 15, 25):
        with WebServiceClient(service, async_workers=threads) as client:
            started = time.perf_counter()
            fast = transformed(client, list(actor_ids))
            fast_s = time.perf_counter() - started
        assert fast == baseline
        print(f"transformed ({threads:>2} request threads)       "
              f"{fast_s:7.3f}s  ({base_s / fast_s:4.1f}x)")

    print(f"\nsample: {baseline[0][1]} acted in {baseline[0][2]} movies")
    service.shutdown()


if __name__ == "__main__":
    main()
