#!/usr/bin/env python3
"""Quickstart: transform the paper's Example 2 and watch it get faster.

Builds a small TPC-H-style ``part`` table on the simulated SYS1 server,
writes the classic blocking count-per-category loop, transforms it with
one decorator, and compares wall-clock times and results.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import Database, SYS1, asyncify


def build_database() -> Database:
    db = Database(SYS1)
    db.create_table(
        "part", ("part_key", "int"), ("category_id", "int"), ("size", "int")
    )
    db.create_index("idx_part_category", "part", "category_id")
    # Parts of one category sit together (as a clustered bulk load
    # would), so each count touches a handful of pages.
    db.bulk_load(
        "part",
        ((i, i // 600, (i * 17) % 1000) for i in range(30_000)),
    )
    return db


# --- The original program: paper Example 2, verbatim shape -------------
def total_part_count(conn, category_list):
    """Sum part counts over a worklist of categories (blocking)."""
    qt = conn.prepare("SELECT count(part_key) FROM part WHERE category_id = ?")
    total = 0
    while len(category_list) > 0:
        category = category_list.pop()
        qt.bind(1, category)
        part_count = conn.execute_query(qt)
        total += part_count.scalar()
    return total


def main() -> None:
    db = build_database()
    categories = [i % 50 for i in range(800)]

    print("=" * 70)
    print("ORIGINAL program (blocking executeQuery per iteration)")
    print("=" * 70)
    with db.connect(async_workers=10) as conn:
        started = time.perf_counter()
        blocking_total = total_part_count(conn, list(categories))
        blocking_s = time.perf_counter() - started
    print(f"result = {blocking_total}, time = {blocking_s:.3f}s")

    print()
    print("=" * 70)
    print("TRANSFORMED program (automatic loop fission + async submission)")
    print("=" * 70)
    async_total_part_count = asyncify(total_part_count)
    print(async_total_part_count.__repro_source__)
    with db.connect(async_workers=10) as conn:
        started = time.perf_counter()
        async_total = async_total_part_count(conn, list(categories))
        async_s = time.perf_counter() - started
    print(f"result = {async_total}, time = {async_s:.3f}s")

    assert blocking_total == async_total, "transformation must preserve results"
    print()
    print(f"speedup: {blocking_s / async_s:.1f}x  (identical results)")
    db.close()


if __name__ == "__main__":
    main()
