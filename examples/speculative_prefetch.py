"""Speculative (unguarded) prefetch end to end.

1. ``prefetch_source`` with ``speculate=True`` hoists a detail lookup
   *above the conditional whose outcome depends on the first query's
   result* — the case the guarded hoist can never start early — as a
   ``speculate_query`` dispatch whose handle is abandoned when the
   guard turns out false.  Each site is gated by the cost model's
   breakeven advice (``SpeculationPolicy``).
2. The same kernel runs against a real database: the pipeline's
   ``SubmissionStats`` settle every speculation as a hit (fetched) or a
   waste (abandoned/drained at close), and a too-demanding threshold
   falls back to the guarded transform.

Run: ``PYTHONPATH=src python examples/speculative_prefetch.py``
"""

from repro import INSTANT, SpeculationPolicy, SYS1, asyncify, prefetch_source
from repro.workloads import hotset

SOURCE = '''
def profile_card(conn, user_id):
    row = conn.execute_query(
        "SELECT name, rating FROM users WHERE user_id = ?", [user_id])
    name = row[0][0]
    rating = row[0][1]
    if rating >= -4:
        listed = conn.execute_query(
            "SELECT count(*) FROM items WHERE seller_id = ?", [user_id])
        return (user_id, name, rating, listed[0][0])
    return (user_id, name, rating, 0)
'''


def main() -> None:
    print("=== guarded-only prefetch (the guard pins the submit) ===")
    guarded = prefetch_source(SOURCE)
    print(guarded.source)

    print("=== speculative prefetch (unguarded, cost-model gated) ===")
    policy = SpeculationPolicy(profile=SYS1, hit_probability=0.9)
    speculative = prefetch_source(SOURCE, speculate=True, speculation=policy)
    print(speculative.source)
    print(speculative.summary())

    print()
    print("=== a threshold the estimate cannot clear falls back ===")
    capped = prefetch_source(SOURCE, speculate=True, speculate_threshold=0.95)
    print("speculative sites:",
          [site.speculative for site in capped.prefetch_sites])

    print()
    print("=== runtime: hits, wastes, and the close-time drain ===")
    db = hotset.build_database(INSTANT, users=2_000, items=500,
                               comments=500, bids=500)
    kernel = asyncify(hotset.profile_card, prefetch=True, speculate=True,
                      speculation=policy)
    try:
        conn = db.connect(async_workers=4)
        ids = hotset.skewed_user_batch(db, 200, hot_users=8)
        cards = [kernel(conn, user_id) for user_id in ids]
        stats = conn.stats
        conn.close()  # drains: every unfetched handle settles as wasted
        with db.connect() as check:
            assert cards == [hotset.profile_card(check, uid) for uid in ids]
        print(f"{stats.speculations} speculations -> "
              f"{stats.speculation_hits} hits, "
              f"{stats.speculation_wasted} wasted "
              f"(all settled: "
              f"{stats.speculation_hits + stats.speculation_wasted} "
              f"== {stats.speculations})")
    finally:
        db.close()


if __name__ == "__main__":
    main()
