"""Prefetching and result caching end to end.

1. ``prefetch_source`` hoists a guarded profile lookup above the
   conditional that consumes it (and above everything it does not depend
   on), so the round trip overlaps the surrounding work.
2. A shared ``ResultCache`` serves the hot repeats of a skewed read
   batch client-side, and an ``execute_update`` invalidates exactly the
   cached results that read the written table.

Run: ``PYTHONPATH=src python examples/prefetch_cache.py``
"""

from repro import INSTANT, ResultCache, prefetch_source
from repro.workloads import hotset

SOURCE = '''
def seller_banner(conn, seller_id, detailed):
    listing = conn.execute_query(
        "SELECT count(*) FROM items WHERE seller_id = ?", [seller_id])
    banner = [listing.scalar()]
    if detailed:
        profile = conn.execute_query(
            "SELECT name, rating FROM users WHERE user_id = ?", [seller_id])
        banner.append(profile[0][0])
    return banner
'''


def main() -> None:
    print("=== prefetch insertion ===")
    result = prefetch_source(SOURCE, cache_size=128)
    print(result.source)
    print(result.summary())

    print()
    print("=== shared result cache on skewed reads ===")
    db = hotset.build_database(INSTANT, users=2_000, items=500,
                               comments=500, bids=500)
    cache = ResultCache(capacity=64)
    try:
        conn = db.connect(async_workers=4, result_cache=cache)
        ids = hotset.skewed_user_batch(db, 300, hot_users=8)
        hotset.load_profiles(conn, ids)
        print(f"hit rate over {cache.stats.lookups} lookups: "
              f"{cache.stats.hit_rate:.0%} ({cache.stats.hits} hits)")

        user = ids[0]
        before = conn.execute_query(hotset.PROFILE_SQL, [user]).rows
        conn.execute_update(hotset.RATING_UPDATE_SQL, [99, user])
        after = conn.execute_query(hotset.PROFILE_SQL, [user]).rows
        print(f"user {user} before update: {before}, after: {after} "
              f"(write invalidated the cached profile)")
        conn.close()
    finally:
        db.close()


if __name__ == "__main__":
    main()
