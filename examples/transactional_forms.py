#!/usr/bin/env python3
"""Updates and transactions: the Discussion-section rules, live.

The paper transforms Experiment 4's INSERT loop by declaring the
key-distinct INSERTs *commutative* — but leaves "the interaction between
asynchronous queries and transaction semantics" as future work.  This
example shows the rules this reproduction adopts:

1. Each form-issue batch loads atomically: all of its INSERTs run inside
   one transaction, so a mid-batch validation failure rolls the whole
   batch back (no half-expanded ranges in ``forms_master``).
2. Asynchronous *reads* are allowed while the transaction is open —
   the audit query below overlaps the INSERT stream.
3. Asynchronous *updates* inside a transaction are rejected: their
   errors could not be observed before the commit decision.  The
   transformed (async-INSERT) path therefore runs in autocommit, exactly
   as the paper's Experiment 4 does.

Run:  python examples/transactional_forms.py
"""

from __future__ import annotations

import time

from repro.db import SYS1, TransactionStateError
from repro.workloads import forms

AUDIT_SQL = "SELECT count(form_no) FROM forms_master WHERE agent_id = ?"


def load_batch_atomically(conn, issue, fail_after=None):
    """Expand one issue range inside a transaction.

    ``fail_after`` simulates an application validation error after that
    many inserts, demonstrating rollback.
    """
    agent_id, start_no, end_no = issue
    with conn.transaction():
        done = 0
        for form_no in range(start_no, end_no + 1):
            conn.execute_update(forms.INSERT_FORM_SQL, [form_no, agent_id])
            done += 1
            if fail_after is not None and done >= fail_after:
                raise ValueError(f"validation failed after {done} forms")
    return done


def main() -> None:
    db = forms.build_database(SYS1)
    try:
        conn = db.connect(async_workers=10)
        issues = forms.issue_batch(total_forms=600, range_size=60)

        print("=" * 70)
        print("1. Atomic batch loads (commit path)")
        print("=" * 70)
        started = time.perf_counter()
        loaded = sum(load_batch_atomically(conn, issue) for issue in issues)
        elapsed = time.perf_counter() - started
        print(
            f"loaded {loaded} forms in {len(issues)} transactions "
            f"({elapsed:.3f}s); table holds {forms.loaded_form_count(db)} rows"
        )

        print()
        print("=" * 70)
        print("2. Rollback on mid-batch failure")
        print("=" * 70)
        before = forms.loaded_form_count(db)
        try:
            load_batch_atomically(conn, (999, 100_000, 100_059), fail_after=30)
        except ValueError as exc:
            print(f"batch aborted: {exc}")
        after = forms.loaded_form_count(db)
        print(
            f"rows before = {before}, after = {after} "
            f"(the 30 inserted forms were rolled back)"
        )
        assert before == after

        print()
        print("=" * 70)
        print("3. Async reads overlap an open transaction")
        print("=" * 70)
        conn.begin()
        conn.execute_update(forms.INSERT_FORM_SQL, [200_000, 7])
        # Reads submitted *during* the transaction see its own writes
        # (table-level locks; the reader is the same transaction).
        agents = sorted({issue[0] for issue in issues})[:4] + [7]
        handles = [conn.submit_query(AUDIT_SQL, [agent]) for agent in agents]
        counts = [conn.fetch_result(handle).scalar() for handle in handles]
        print(f"audit counts while txn open: {dict(zip(agents, counts))}")
        assert counts[-1] >= 1  # the uncommitted insert is visible to us

        try:
            conn.submit_update(forms.INSERT_FORM_SQL, [200_001, 7])
        except TransactionStateError as exc:
            print(f"async update rejected, as specified: {exc}")
        conn.rollback()
        print("transaction rolled back; audit insert undone")

        conn.close()
    finally:
        db.close()


if __name__ == "__main__":
    main()
