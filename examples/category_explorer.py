#!/usr/bin/env python3
"""Category-hierarchy explorer (the paper's Experiment 3 workload).

The DFS traversal cannot be split by Rule A alone — the stack update
after the query creates a loop-carried flow dependence into the next
iteration.  This example shows the statement reordering algorithm
(paper Section IV) rescuing it, prints the rewritten source, and
compares cold-cache times where the win is largest (concurrent
submissions let the simulated disk array reorder and parallelize the
page reads).

Run:  python examples/category_explorer.py
"""

from __future__ import annotations

import time

from repro import SYS1, asyncify
from repro.workloads import category


def main() -> None:
    print("building category hierarchy (1000 categories) + part table...")
    db = category.build_database(SYS1, parts=30_000)
    children = category.load_children(db)
    roots = category.roots_for_iterations(100)  # one full top-level subtree

    # Without reordering, Rule A refuses this loop:
    blocked = asyncify(category.max_part_size, reorder=False)
    outcome = blocked.__repro_report__[0]
    print(f"with reordering disabled: transformed={outcome.transformed} "
          f"({outcome.outcomes[0].reason})")

    transformed = asyncify(category.max_part_size)
    outcome = transformed.__repro_report__[0].outcomes[0]
    print(f"with reordering enabled:  transformed, "
          f"{outcome.reorder_moves} statement moves, "
          f"{outcome.reader_stubs} reader stub(s)")
    print()
    print(transformed.__repro_source__)

    def run(kernel, label):
        db.flush_cache()  # cold cache: the interesting regime
        with db.connect(async_workers=20) as conn:
            started = time.perf_counter()
            result = kernel(conn, children, list(roots))
            elapsed = time.perf_counter() - started
        print(f"{label:<38} {elapsed:7.3f}s  (max size={result[0]}, "
              f"visited={result[1]})")
        return result

    baseline = run(category.max_part_size, "original, cold cache")
    fast = run(transformed, "transformed, cold cache, 20 threads")
    assert baseline == fast

    report = db.io_report()
    print()
    print(f"disk reads={report['disk']['reads']}, "
          f"max IO queue depth={report['disk']['max_queue_depth']}, "
          f"buffer hit ratio={report['buffer']['hit_ratio']:.2f}")
    db.close()


if __name__ == "__main__":
    main()
