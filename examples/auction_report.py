#!/usr/bin/env python3
"""Auction-site reporting (the paper's Experiment 1 workload).

Generates a RUBiS-style database, then renders a "recent comments with
author details" report three ways:

1. the original blocking loop,
2. the automatically transformed loop,
3. the transformed loop with a bounded submission window (the paper's
   Discussion-section memory cap).

Run:  python examples/auction_report.py
"""

from __future__ import annotations

import time

from repro import SYS1, asyncify
from repro.workloads import rubis


def timed(label, fn, *args):
    started = time.perf_counter()
    result = fn(*args)
    elapsed = time.perf_counter() - started
    print(f"{label:<42} {elapsed:7.3f}s")
    return result


def main() -> None:
    print("building auction database (users, items, comments, bids)...")
    db = rubis.build_database(SYS1)
    comments = rubis.comment_batch(db, 2_000)

    transformed = asyncify(rubis.load_comment_authors)
    windowed = asyncify(rubis.load_comment_authors, window=128)

    report = transformed.__repro_report__[0]
    print(
        f"transformation: loop at line {report.lineno} -> "
        f"{'OK' if report.transformed else 'blocked'}, "
        f"split vars = {report.outcomes[0].split_vars}"
    )
    print()

    with db.connect(async_workers=10) as conn:
        baseline = timed("original (blocking)", rubis.load_comment_authors,
                         conn, list(comments))
    with db.connect(async_workers=10) as conn:
        fast = timed("transformed (async, unbounded records)", transformed,
                     conn, list(comments))
    with db.connect(async_workers=10) as conn:
        capped = timed("transformed (async, window=128)", windowed,
                       conn, list(comments))

    assert baseline == fast == capped
    print()
    print(f"sample row: comment={baseline[0][0]} author={baseline[0][1]!r} "
          f"rating={baseline[0][2]}")
    print(f"all three variants returned {len(baseline)} identical rows")
    db.close()


if __name__ == "__main__":
    main()
